// Cancellation stress: a random subset of threads acquires with tiny
// timeouts (try_lock_for) under heavy read/write contention while the rest
// block normally.  Afterwards the run must leave zero incomplete requests
// and no holder on any resource, and the recorded invocation log — cancels
// included — must replay byte-identically through a fresh validating engine
// (verify_replay), with survivors inside the discrete Thm. 1/2 shadow caps.
//
// Set RWRNLP_CANCEL_FAULTS=1 in the environment to scale the iteration
// counts ~4x (used by the CI fault-injection leg).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <random>
#include <thread>
#include <vector>

#include "locks/invocation_log.hpp"
#include "locks/spin_rw_rnlp.hpp"
#include "locks/suspend_rw_rnlp.hpp"
#include "support/harness.hpp"
#include "testing/oracle.hpp"

namespace rwrnlp::locks {
namespace {

using namespace std::chrono_literals;
using support::expect_engine_drained;
using support::fault_scale;

// Two threads, one resource, strict oracle caps: thread 0 holds-and-releases
// the write lock in a loop; thread 1 races timed writes with a deadline so
// short that many of them cancel.  Every cancel lands in the invocation log
// and must replay cleanly under the strict (m = 2) bound accounting —
// canceled requests never ran a critical section, so they must not consume
// the survivor's blocking budget.
TEST(CancelStress, StrictTwoThreadTimedWrites) {
  const int iters = 60 * fault_scale();
  SpinRwRnlp lock(1);
  InvocationLog log;
  lock.engine_for_test().set_trace_recording(true);
  lock.set_invocation_log(&log);

  std::atomic<std::uint64_t> grants{0};
  std::thread holder([&] {
    for (int k = 0; k < iters; ++k) {
      const LockToken tok = lock.acquire(ResourceSet(1), ResourceSet(1, {0}));
      std::this_thread::sleep_for(50us);
      lock.release(tok);
    }
  });
  std::thread timed([&] {
    for (int k = 0; k < iters; ++k) {
      auto tok = lock.try_lock_for(ResourceSet(1), ResourceSet(1, {0}), 20us);
      if (tok) {
        ++grants;
        lock.release(*tok);
      }
    }
  });
  holder.join();
  timed.join();

  const HealthReport hr = lock.health_report();
  EXPECT_EQ(hr.acquired, static_cast<std::uint64_t>(iters) + grants.load());
  EXPECT_EQ(hr.timeouts, hr.canceled);
  expect_engine_drained(lock.engine_for_test(), 1);

  testing::OracleOptions oo;
  oo.num_threads = 2;
  oo.ops_per_thread = static_cast<std::size_t>(iters);
  testing::verify_replay(lock.engine_for_test(), log, oo);
}

// Heavy mixed contention on a spin lock: m = 4 threads over 3 resources; a
// random per-operation coin decides reader vs writer and timed vs blocking,
// so an unpredictable subset of requests abandons mid-queue.  Loose caps
// apply (> 2 threads), but the byte-equal trace replay and the E-property /
// persistence / Lemma 6 observer run over every cancel.
TEST(CancelStress, RandomTimedSubsetUnderContentionSpin) {
  const int iters = 40 * fault_scale();
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kResources = 3;
  SpinRwRnlp lock(kResources);
  InvocationLog log;
  lock.engine_for_test().set_trace_recording(true);
  lock.set_invocation_log(&log);

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      std::mt19937 rng(static_cast<unsigned>(0xC0FFEE + tid));
      std::uniform_int_distribution<int> coin(0, 3);
      std::uniform_int_distribution<std::size_t> pick(0, kResources - 1);
      for (int k = 0; k < iters; ++k) {
        const std::size_t a = pick(rng);
        const std::size_t b = pick(rng);
        ResourceSet reads(kResources);
        ResourceSet writes(kResources);
        if (coin(rng) == 0) {
          writes.set(a);
          if (b != a) writes.set(b);
        } else {
          reads.set(a);
        }
        const bool timed = coin(rng) < 2;
        if (timed) {
          auto tok = lock.try_lock_for(reads, writes, 30us);
          if (tok) {
            std::this_thread::sleep_for(10us);
            lock.release(*tok);
          }
        } else {
          const LockToken tok = lock.acquire(reads, writes);
          std::this_thread::sleep_for(10us);
          lock.release(tok);
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  expect_engine_drained(lock.engine_for_test(), kResources);

  testing::OracleOptions oo;
  oo.num_threads = kThreads;
  oo.ops_per_thread = static_cast<std::size_t>(iters);
  testing::verify_replay(lock.engine_for_test(), log, oo);
}

// Same shape on the suspension-based front end, where the timeout path goes
// through the condition variable (wait_until) instead of a spin loop, and a
// cancel's fixpoint must still wake any newly satisfied sleepers.
TEST(CancelStress, RandomTimedSubsetUnderContentionSuspend) {
  const int iters = 30 * fault_scale();
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kResources = 2;
  SuspendRwRnlp lock(kResources);
  InvocationLog log;
  lock.engine_for_test().set_trace_recording(true);
  lock.set_invocation_log(&log);

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      std::mt19937 rng(static_cast<unsigned>(0xBEEF + tid));
      std::uniform_int_distribution<int> coin(0, 3);
      std::uniform_int_distribution<std::size_t> pick(0, kResources - 1);
      for (int k = 0; k < iters; ++k) {
        ResourceSet reads(kResources);
        ResourceSet writes(kResources);
        if (coin(rng) == 0) {
          writes.set(pick(rng));
        } else {
          reads.set(pick(rng));
        }
        if (coin(rng) < 2) {
          auto tok = lock.try_lock_for(reads, writes, 50us);
          if (tok) {
            std::this_thread::sleep_for(10us);
            lock.release(*tok);
          }
        } else {
          const LockToken tok = lock.acquire(reads, writes);
          std::this_thread::sleep_for(10us);
          lock.release(tok);
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(lock.blocked_waiters(), 0u);
  expect_engine_drained(lock.engine_for_test(), kResources);

  testing::OracleOptions oo;
  oo.num_threads = kThreads;
  oo.ops_per_thread = static_cast<std::size_t>(iters);
  testing::verify_replay(lock.engine_for_test(), log, oo);
}

}  // namespace
}  // namespace rwrnlp::locks
