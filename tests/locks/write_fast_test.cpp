// Optimistic mutex-free writer admission (front_end.hpp, DESIGN.md §14).
//
// Functional coverage for the write fast path on the flat and sharded front
// ends: fast hits on idle domains, fallback on contention (summary words or
// the mutex claim), counter attribution (write_fast_hits / misses,
// writer_sweeps / sweep_words_read), composition with the reader indicator,
// and a seqlock-style exclusion stress that doubles as the TSan surface for
// the epoch/summary validation racing engine invocations (CI leg
// tsan-writefast).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "locks/sharded_rw_rnlp.hpp"
#include "locks/spin_rw_rnlp.hpp"
#include "locks/suspend_rw_rnlp.hpp"

namespace rwrnlp::locks {
namespace {

using namespace std::chrono_literals;

TEST(WriteFastSpin, UncontendedWriterHitsFastPath) {
  SpinRwRnlp lock(4);
  lock.set_write_fast_path(true);
  const LockToken w = lock.acquire(ResourceSet(4), ResourceSet(4, {1}));
  lock.release(w);
  // A disjoint second writer is also uncontended.
  const LockToken w2 = lock.acquire(ResourceSet(4), ResourceSet(4, {3}));
  lock.release(w2);
  const HealthReport hr = lock.health_report();
  EXPECT_EQ(hr.write_fast_hits, 2u);
  EXPECT_EQ(hr.write_fast_misses, 0u);
  EXPECT_EQ(hr.acquired, 2u);
  EXPECT_EQ(lock.engine_for_test().incomplete_count(), 0u);
}

TEST(WriteFastSpin, MixedRequestTakesFastPath) {
  SpinRwRnlp lock(4);
  lock.set_write_fast_path(true);
  const LockToken m = lock.acquire(ResourceSet(4, {0}), ResourceSet(4, {2}));
  lock.release(m);
  const HealthReport hr = lock.health_report();
  EXPECT_EQ(hr.write_fast_hits, 1u);
  EXPECT_EQ(lock.engine_for_test().incomplete_count(), 0u);
}

TEST(WriteFastSpin, OffByDefault) {
  SpinRwRnlp lock(4);
  const LockToken w = lock.acquire(ResourceSet(4), ResourceSet(4, {0}));
  lock.release(w);
  const HealthReport hr = lock.health_report();
  EXPECT_EQ(hr.write_fast_hits, 0u);
  EXPECT_EQ(hr.write_fast_misses, 0u);
  EXPECT_EQ(hr.acquired, 1u);
}

// An occupied summary word (a read holder anywhere in the guard domain)
// must deflect the optimistic writer to the classic path, where it queues
// and is granted only after the reader leaves.
TEST(WriteFastSpin, OccupiedDomainFallsBackToClassic) {
  SpinRwRnlp lock(2);
  lock.set_write_fast_path(true);
  std::atomic<bool> reader_in{false};
  std::atomic<bool> release_reader{false};
  std::thread reader([&] {
    const LockToken r = lock.acquire(ResourceSet(2, {0}), ResourceSet(2));
    reader_in.store(true, std::memory_order_release);
    while (!release_reader.load(std::memory_order_acquire))
      std::this_thread::yield();
    lock.release(r);
  });
  while (!reader_in.load(std::memory_order_acquire)) std::this_thread::yield();
  std::thread writer([&] {
    // Blocks behind the reader on the classic path; the fast attempt must
    // miss on summary[l0] != 0.
    const LockToken w = lock.acquire(ResourceSet(2), ResourceSet(2, {0}));
    lock.release(w);
  });
  // The reader is still in, so the writer cannot fast-hit: wait until its
  // attempt has actually missed before letting the reader go (the writer is
  // then queued on the classic path).
  while (lock.health_report().write_fast_misses == 0)
    std::this_thread::yield();
  release_reader.store(true, std::memory_order_release);
  reader.join();
  writer.join();
  const HealthReport hr = lock.health_report();
  EXPECT_EQ(hr.write_fast_hits, 0u);
  EXPECT_GE(hr.write_fast_misses, 1u);
  EXPECT_EQ(hr.acquired, 2u);
  EXPECT_EQ(lock.engine_for_test().incomplete_count(), 0u);
}

// With the reader indicator on, the writer fast path runs inside the guard
// (arrive + sweep first), so the indicator and summary validations compose:
// an uncontended writer still admits without a queued mutex acquisition and
// every writer acquisition is attributed to exactly one of hits/misses.
TEST(WriteFastSpin, ComposesWithReaderIndicator) {
  SpinRwRnlp lock(4);
  lock.enable_reader_indicator();
  lock.set_write_fast_path(true);
  const LockToken w = lock.acquire(ResourceSet(4), ResourceSet(4, {1}));
  lock.release(w);
  // The guard departed: an indicator read on the same resource is fast.
  const LockToken r = lock.acquire(ResourceSet(4, {1}), ResourceSet(4));
  EXPECT_TRUE(is_indicator_token_id(r.id));
  lock.release(r);
  const HealthReport hr = lock.health_report();
  EXPECT_EQ(hr.write_fast_hits, 1u);
  EXPECT_EQ(hr.writer_sweeps, 1u);
  EXPECT_GE(hr.sweep_words_read, 1u);
  EXPECT_EQ(lock.engine_for_test().incomplete_count(), 0u);
}

TEST(WriteFastSuspend, UncontendedWriterHitsFastPath) {
  SuspendRwRnlp lock(4);
  lock.set_write_fast_path(true);
  const LockToken w = lock.acquire(ResourceSet(4), ResourceSet(4, {2}));
  lock.release(w);
  const HealthReport hr = lock.health_report();
  EXPECT_EQ(hr.write_fast_hits, 1u);
  EXPECT_EQ(hr.write_fast_misses, 0u);
  EXPECT_EQ(lock.pending_satisfied_count(), 0u);
  EXPECT_EQ(lock.blocked_waiters(), 0u);
}

// Seqlock-style exclusion invariant under reader/writer pressure with both
// fast paths enabled — the TSan stress surface for the optimistic
// validate/claim/re-check window racing reader publishes and classic
// admissions.  Every writer acquisition must be attributed to exactly one
// of hits/misses.
template <typename Lock>
void run_write_fast_stress(Lock& lock, std::size_t q, int iters,
                           int num_readers, int num_writers) {
  std::vector<std::atomic<std::uint64_t>> seq(q);
  for (auto& s : seq) s.store(0);
  std::atomic<bool> violation{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < num_readers; ++t) {
    threads.emplace_back([&, t] {
      for (int k = 0; k < iters; ++k) {
        const std::size_t a = static_cast<std::size_t>(t + k) % q;
        const LockToken tok =
            lock.acquire(ResourceSet(q, {a}), ResourceSet(q));
        if ((seq[a].load(std::memory_order_relaxed) & 1) != 0)
          violation.store(true, std::memory_order_relaxed);
        lock.release(tok);
      }
    });
  }
  for (int t = 0; t < num_writers; ++t) {
    threads.emplace_back([&, t] {
      for (int k = 0; k < iters; ++k) {
        const std::size_t w = static_cast<std::size_t>(5 * t + 7 * k) % q;
        const LockToken tok =
            lock.acquire(ResourceSet(q), ResourceSet(q, {w}));
        seq[w].fetch_add(1, std::memory_order_relaxed);  // now odd
        seq[w].fetch_add(1, std::memory_order_relaxed);  // even again
        lock.release(tok);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(violation.load()) << "writer ran inside a reader's section";
}

TEST(WriteFastSpin, ExclusionStress) {
  SpinRwRnlp lock(4);
  lock.set_write_fast_path(true);
  constexpr int kIters = 400;
  constexpr int kWriters = 2;
  run_write_fast_stress(lock, 4, kIters, 3, kWriters);
  const HealthReport hr = lock.health_report();
  EXPECT_EQ(hr.write_fast_hits + hr.write_fast_misses,
            static_cast<std::uint64_t>(kWriters) * kIters);
  EXPECT_EQ(lock.engine_for_test().incomplete_count(), 0u);
}

TEST(WriteFastSpin, ExclusionStressWithIndicator) {
  SpinRwRnlp lock(4);
  lock.enable_reader_indicator();
  lock.set_write_fast_path(true);
  run_write_fast_stress(lock, 4, 400, 3, 2);
  const HealthReport hr = lock.health_report();
  EXPECT_GT(hr.write_fast_hits + hr.write_fast_misses, 0u);
  EXPECT_EQ(lock.engine_for_test().incomplete_count(), 0u);
}

TEST(WriteFastSuspend, ExclusionStress) {
  SuspendRwRnlp lock(4);
  lock.set_write_fast_path(true);
  run_write_fast_stress(lock, 4, 300, 3, 2);
  EXPECT_EQ(lock.engine_for_test().incomplete_count(), 0u);
  EXPECT_EQ(lock.blocked_waiters(), 0u);
}

// Sharded shard-local path: the toggle propagates, writers inside one
// component admit optimistically, and the merged health report sums the new
// counters across shards.
TEST(WriteFastSharded, ShardLocalFastPathAndMergedCounters) {
  ShardedRwRnlp lock(4, {ResourceSet(4, {0, 1}), ResourceSet(4, {2, 3})});
  lock.enable_reader_indicators();
  lock.set_write_fast_path(true);
  const LockToken w0 = lock.acquire(ResourceSet(4), ResourceSet(4, {0}));
  lock.release(w0);
  const LockToken w1 = lock.acquire(ResourceSet(4), ResourceSet(4, {3}));
  lock.release(w1);
  const HealthReport hr = lock.health_report();
  EXPECT_EQ(hr.write_fast_hits, 2u);
  EXPECT_EQ(hr.writer_sweeps, 2u);
  EXPECT_GE(hr.sweep_words_read, 2u);
  for (std::size_t c = 0; c < lock.num_components(); ++c)
    EXPECT_EQ(lock.shard(c).engine_for_test().incomplete_count(), 0u);
}

// Cross-shard combining amortizes the writer sweep: executed sweep passes
// never exceed per-writer guard entries, and under batching they fall below
// (the explicit evidence that sweeps are deduplicated per combiner tour).
TEST(WriteFastSharded, CrossShardAmortizedSweepAccounting) {
  ShardedRwRnlp lock(4, {ResourceSet(4, {0, 1}), ResourceSet(4, {2, 3})});
  lock.enable_reader_indicators();
  lock.enable_cross_shard_combining();
  constexpr int kIters = 300;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int k = 0; k < kIters; ++k) {
        const std::size_t c = static_cast<std::size_t>(t + k) % 2;
        const LockToken tok =
            lock.acquire(ResourceSet(4), ResourceSet(4, {2 * c}));
        lock.release(tok);
      }
    });
  }
  for (auto& t : threads) t.join();
  const HealthReport hr = lock.health_report();
  EXPECT_EQ(hr.indicator_sweeps, 4u * kIters);  // one guard entry per writer
  EXPECT_GT(hr.writer_sweeps, 0u);
  EXPECT_LE(hr.writer_sweeps, hr.indicator_sweeps);
  EXPECT_GT(hr.sweep_words_read, 0u);
  for (std::size_t c = 0; c < lock.num_components(); ++c)
    EXPECT_EQ(lock.shard(c).engine_for_test().incomplete_count(), 0u);
}

}  // namespace
}  // namespace rwrnlp::locks
