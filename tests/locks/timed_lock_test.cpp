// Timed acquisition (try_lock_for / try_lock_until) and the robustness
// layer across the lock front ends: timeout leaves no trace in the engine,
// a late grant wins the timeout-vs-grant race, load shedding enforces the
// P2 ceiling, and the watchdog surfaces stuck holders.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "locks/baselines.hpp"
#include "locks/health.hpp"
#include "locks/sharded_rw_rnlp.hpp"
#include "locks/spin_rw_rnlp.hpp"
#include "locks/suspend_rw_rnlp.hpp"
#include "support/harness.hpp"

namespace rwrnlp::locks {
namespace {

using namespace std::chrono_literals;
using support::none;

TEST(TimedLock, UncontendedTimedAcquireSucceedsSpin) {
  SpinRwRnlp lock(2);
  auto tok = lock.try_lock_for(none(2), ResourceSet(2, {0}), 1s);
  ASSERT_TRUE(tok.has_value());
  lock.release(*tok);
  const HealthReport hr = lock.health_report();
  EXPECT_EQ(hr.acquired, 1u);
  EXPECT_EQ(hr.timeouts, 0u);
  EXPECT_EQ(hr.incomplete, 0u);
}

TEST(TimedLock, UncontendedExpiredDeadlineStillGrantsSpin) {
  // The request is satisfied at issuance (Rule W1), so even an
  // already-expired deadline reports the lock as acquired: a grant always
  // wins over a timeout.
  SpinRwRnlp lock(2);
  auto tok = lock.try_lock_until(none(2), ResourceSet(2, {0}),
                                 std::chrono::steady_clock::time_point{});
  ASSERT_TRUE(tok.has_value());
  lock.release(*tok);
}

TEST(TimedLock, TimeoutCancelsAndLeavesCleanStateSpin) {
  SpinRwRnlp lock(2);
  const LockToken held = lock.acquire(none(2), ResourceSet(2, {0}));
  // Conflicting timed write from the same thread: must time out, not
  // deadlock, and must leave no queue entry behind.
  auto tok = lock.try_lock_for(none(2), ResourceSet(2, {0}), 5ms);
  EXPECT_FALSE(tok.has_value());
  {
    const HealthReport hr = lock.health_report();
    EXPECT_EQ(hr.timeouts, 1u);
    EXPECT_EQ(hr.canceled, 1u);
    EXPECT_EQ(hr.incomplete, 1u);  // only the holder
    EXPECT_EQ(hr.max_write_queue_depth, 0u);  // canceled entry scrubbed
  }
  lock.release(held);
  // The canceled request left no ghost: a fresh writer is satisfied at
  // issuance.
  auto again = lock.try_lock_for(none(2), ResourceSet(2, {0}), 1s);
  ASSERT_TRUE(again.has_value());
  lock.release(*again);
  EXPECT_EQ(lock.health_report().incomplete, 0u);
}

TEST(TimedLock, TimeoutCancelsAndLeavesCleanStateSuspend) {
  SuspendRwRnlp lock(2);
  const LockToken held = lock.acquire(none(2), ResourceSet(2, {0}));
  auto tok = lock.try_lock_for(none(2), ResourceSet(2, {0}), 5ms);
  EXPECT_FALSE(tok.has_value());
  EXPECT_EQ(lock.health_report().timeouts, 1u);
  EXPECT_EQ(lock.blocked_waiters(), 0u);
  lock.release(held);
  auto again = lock.try_lock_for(none(2), ResourceSet(2, {0}), 1s);
  ASSERT_TRUE(again.has_value());
  lock.release(*again);
  const HealthReport hr = lock.health_report();
  EXPECT_EQ(hr.acquired, 2u);
  EXPECT_EQ(hr.incomplete, 0u);
}

TEST(TimedLock, TimeoutCancelsAndLeavesCleanStateSharded) {
  ShardedRwRnlp lock(4, {ResourceSet(4, {0, 1}), ResourceSet(4, {2, 3})});
  const LockToken held = lock.acquire(none(4), ResourceSet(4, {0}));
  auto timed_out = lock.try_lock_for(none(4), ResourceSet(4, {0, 1}), 5ms);
  EXPECT_FALSE(timed_out.has_value());
  // The other component is unaffected.
  auto other = lock.try_lock_for(none(4), ResourceSet(4, {2}), 1s);
  ASSERT_TRUE(other.has_value());
  lock.release(*other);
  lock.release(held);
  const HealthReport hr = lock.health_report();  // merged across shards
  EXPECT_EQ(hr.acquired, 2u);
  EXPECT_EQ(hr.timeouts, 1u);
  EXPECT_EQ(hr.incomplete, 0u);
}

TEST(TimedLock, LateGrantWinsOverTimeoutSuspend) {
  // The holder releases while the timed waiter sleeps; whichever way the
  // race lands, the call must either return a valid token or nothing —
  // never leak.  With a release at ~half the timeout the grant should win
  // in practice.
  SuspendRwRnlp lock(1);
  const LockToken held = lock.acquire(none(1), ResourceSet(1, {0}));
  std::thread releaser([&] {
    std::this_thread::sleep_for(20ms);
    lock.release(held);
  });
  auto tok = lock.try_lock_for(none(1), ResourceSet(1, {0}), 2s);
  releaser.join();
  ASSERT_TRUE(tok.has_value());
  lock.release(*tok);
  EXPECT_EQ(lock.health_report().incomplete, 0u);
}

TEST(TimedLock, LoadSheddingEnforcesCeiling) {
  SpinRwRnlp lock(2);
  RobustnessOptions opt;
  opt.max_incomplete = 1;  // P2 ceiling for a 1-processor client
  lock.set_robustness_options(opt);
  const LockToken held = lock.acquire(none(2), ResourceSet(2, {0}));
  // Ceiling reached: timed calls fail fast (no timeout wait)...
  const auto before = std::chrono::steady_clock::now();
  auto shed = lock.try_lock_for(none(2), ResourceSet(2, {1}), 10s);
  EXPECT_FALSE(shed.has_value());
  EXPECT_LT(std::chrono::steady_clock::now() - before, 5s);
  // ...and blocking calls throw instead of wedging.
  EXPECT_THROW(lock.acquire(none(2), ResourceSet(2, {1})), OverloadShed);
  EXPECT_EQ(lock.health_report().shed, 2u);
  lock.release(held);
  auto ok = lock.try_lock_for(none(2), ResourceSet(2, {1}), 1s);
  ASSERT_TRUE(ok.has_value());
  lock.release(*ok);
}

TEST(TimedLock, WatchdogReportsStuckHolder) {
  SpinRwRnlp lock(2);
  RobustnessOptions opt;
  opt.stuck_budget = 1ms;
  lock.set_robustness_options(opt);
  const LockToken held = lock.acquire(none(2), ResourceSet(2, {0}));
  std::this_thread::sleep_for(10ms);
  // Direct probe: the holder has outlived its budget.
  {
    const HealthReport hr = lock.health_report();
    ASSERT_EQ(hr.stuck.size(), 1u);
    EXPECT_EQ(hr.stuck[0].id, static_cast<rsm::RequestId>(held.id));
    EXPECT_TRUE(hr.stuck[0].is_write);
    EXPECT_GT(hr.stuck[0].age, 1ms);
  }
  // Background watchdog: the sink sees the stuck holder without any
  // cooperation from the (hypothetically wedged) holding thread.
  std::atomic<bool> reported{false};
  {
    Watchdog::Options wopt;
    wopt.period = 2ms;
    Watchdog dog([&] { return lock.health_report(); },
                 [&](const HealthReport& hr) {
                   if (!hr.stuck.empty()) reported.store(true);
                 },
                 wopt);
    for (int i = 0; i < 2000 && !reported.load(); ++i)
      std::this_thread::sleep_for(1ms);
  }  // ~Watchdog joins the poller
  EXPECT_TRUE(reported.load());
  lock.release(held);
  EXPECT_TRUE(lock.health_report().stuck.empty());
}

TEST(TimedLock, BaselineDefaultIgnoresDeadline) {
  // Locks without cancellation support fall back to blocking acquire().
  GroupRwLock lock(2);
  auto tok = lock.try_lock_for(none(2), ResourceSet(2, {0}),
                               std::chrono::nanoseconds{0});
  ASSERT_TRUE(tok.has_value());
  lock.release(*tok);
}

TEST(TimedLock, ConcurrentTimedWritersMakeProgress) {
  // Several timed writers hammer one resource while a slow holder cycles;
  // every call must end in a grant or a clean timeout, and the engine must
  // be empty at the end.
  SpinRwRnlp lock(1);
  std::atomic<std::uint64_t> grants{0}, timeouts{0};
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&] {
      for (int k = 0; k < 50; ++k) {
        auto tok = lock.try_lock_for(ResourceSet(1), ResourceSet(1, {0}),
                                     std::chrono::microseconds(200));
        if (tok) {
          ++grants;
          lock.release(*tok);
        } else {
          ++timeouts;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(grants + timeouts, 200u);
  EXPECT_GT(grants.load(), 0u);
  const HealthReport hr = lock.health_report();
  EXPECT_EQ(hr.incomplete, 0u);
  EXPECT_EQ(hr.acquired, grants.load());
  EXPECT_EQ(hr.timeouts, timeouts.load());
}

}  // namespace
}  // namespace rwrnlp::locks
