// ShardedRwRnlp front-end behaviour: partition validation at construction,
// request routing, cross-component rejection, and concurrent use.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "locks/sharded_rw_rnlp.hpp"

namespace rwrnlp::locks {
namespace {

std::vector<ResourceSet> two_components(std::size_t q) {
  ResourceSet lo(q), hi(q);
  for (ResourceId l = 0; l < q / 2; ++l) lo.set(l);
  for (ResourceId l = static_cast<ResourceId>(q / 2); l < q; ++l) hi.set(l);
  return {lo, hi};
}

TEST(ShardedRwRnlp, RoutesAndReleasesPerComponent) {
  ShardedRwRnlp lock(8, two_components(8));
  EXPECT_EQ(lock.num_components(), 2u);
  EXPECT_EQ(lock.component_of(0), 0u);
  EXPECT_EQ(lock.component_of(7), 1u);
  EXPECT_EQ(lock.name(), "sharded-rw-rnlp(2)");

  LockToken r = lock.acquire(ResourceSet(8, {0, 1}), ResourceSet(8));
  LockToken w = lock.acquire(ResourceSet(8), ResourceSet(8, {5}));
  // Both shards hold simultaneously; write in component 1 does not block
  // the read in component 0.
  EXPECT_TRUE(lock.shard(0).num_resources() == 8);
  lock.release(w);
  lock.release(r);
}

TEST(ShardedRwRnlp, RejectsCrossComponentRequests) {
  ShardedRwRnlp lock(8, two_components(8));
  EXPECT_THROW(lock.acquire(ResourceSet(8, {1, 6}), ResourceSet(8)),
               std::invalid_argument);
  EXPECT_THROW(lock.acquire(ResourceSet(8, {1}), ResourceSet(8, {6})),
               std::invalid_argument);
  EXPECT_THROW(lock.acquire(ResourceSet(8), ResourceSet(8)),
               std::invalid_argument);
}

TEST(ShardedRwRnlp, RejectsOverlappingComponents) {
  std::vector<ResourceSet> comps = {ResourceSet(4, {0, 1}),
                                    ResourceSet(4, {1, 2})};
  EXPECT_THROW(ShardedRwRnlp(4, comps), std::invalid_argument);
}

TEST(ShardedRwRnlp, RejectsShareTableCrossingComponents) {
  // A declared read request spanning both components makes every write to
  // its members claim a cross-component closure: invalid partition.
  rsm::ReadShareTable shares(8);
  shares.declare_read_request(ResourceSet(8, {1, 6}));
  EXPECT_THROW(ShardedRwRnlp(8, two_components(8), std::move(shares)),
               std::invalid_argument);
}

TEST(ShardedRwRnlp, AcceptsShareTableInsideComponents) {
  rsm::ReadShareTable shares(8);
  shares.declare_read_request(ResourceSet(8, {0, 2}));
  shares.declare_read_request(ResourceSet(8, {5, 6, 7}));
  ShardedRwRnlp lock(8, two_components(8), std::move(shares));
  LockToken t = lock.acquire(ResourceSet(8), ResourceSet(8, {5}));
  lock.release(t);
}

TEST(ShardedRwRnlp, UncoveredResourcesBecomeSingletons) {
  std::vector<ResourceSet> comps = {ResourceSet(5, {0, 1})};
  ShardedRwRnlp lock(5, comps);
  EXPECT_EQ(lock.num_components(), 4u);  // {0,1} + three singletons
  EXPECT_EQ(lock.component_of(0), lock.component_of(1));
  EXPECT_NE(lock.component_of(2), lock.component_of(3));
  EXPECT_EQ(lock.component_resources(lock.component_of(4)),
            ResourceSet(5, {4}));
  LockToken t = lock.acquire(ResourceSet(5), ResourceSet(5, {3}));
  lock.release(t);
}

TEST(ShardedRwRnlp, ConcurrentDisjointComponentsMakeProgress) {
  ShardedRwRnlp lock(8, two_components(8));
  constexpr int kOps = 500;
  auto worker = [&](ResourceId a, ResourceId b) {
    for (int i = 0; i < kOps; ++i) {
      LockToken t = (i % 3 == 0)
                        ? lock.acquire(ResourceSet(8), ResourceSet(8, {a, b}))
                        : lock.acquire(ResourceSet(8, {a, b}), ResourceSet(8));
      lock.release(t);
    }
  };
  std::thread t1(worker, 0, 2);
  std::thread t2(worker, 4, 6);
  t1.join();
  t2.join();
}

}  // namespace
}  // namespace rwrnlp::locks
