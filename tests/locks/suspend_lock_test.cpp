// SuspendRwRnlp-specific behaviour: satisfied-set hygiene (no unbounded
// growth), reader/writer mixing under suspension, oversubscription, and the
// targeted-wakeup discipline (a release that satisfies nobody must not
// stampede unrelated waiters through the mutex).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "locks/suspend_rw_rnlp.hpp"
#include "util/rng.hpp"

namespace rwrnlp::locks {
namespace {

using namespace std::chrono_literals;

/// Polls until `cond` holds (or ~2 s elapse); suspension tests need to wait
/// for another thread to actually park on the condition variable.
template <typename Cond>
bool eventually(Cond&& cond) {
  for (int i = 0; i < 2000; ++i) {
    if (cond()) return true;
    std::this_thread::sleep_for(1ms);
  }
  return cond();
}

TEST(SuspendRwRnlp, BasicAcquireReleaseSingleThread) {
  SuspendRwRnlp lock(3);
  const LockToken r = lock.acquire(ResourceSet(3, {0, 1}), ResourceSet(3));
  lock.release(r);
  const LockToken w = lock.acquire(ResourceSet(3), ResourceSet(3, {2}));
  lock.release(w);
  const LockToken m = lock.acquire(ResourceSet(3, {0}), ResourceSet(3, {1}));
  lock.release(m);
  EXPECT_EQ(lock.pending_satisfied_count(), 0u);
  EXPECT_EQ(lock.blocked_waiters(), 0u);
  // Nobody ever slept, so nobody was ever woken.
  EXPECT_EQ(lock.notify_count(), 0u);
  EXPECT_EQ(lock.wakeup_count(), 0u);
}

TEST(SuspendRwRnlp, ReadersShareWhileWriterExcludes) {
  SuspendRwRnlp lock(2);
  std::atomic<int> readers{0};
  std::atomic<int> peak{0};
  std::atomic<bool> writer_overlap{false};
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&] {
      for (int k = 0; k < 150; ++k) {
        const LockToken t = lock.acquire(ResourceSet(2, {0}), ResourceSet(2));
        const int now = readers.fetch_add(1) + 1;
        int p = peak.load();
        while (now > p && !peak.compare_exchange_weak(p, now)) {
        }
        std::this_thread::yield();
        readers.fetch_sub(1);
        lock.release(t);
      }
    });
  }
  std::thread writer([&] {
    for (int k = 0; k < 60; ++k) {
      const LockToken t = lock.acquire(ResourceSet(2), ResourceSet(2, {0}));
      if (readers.load() != 0) writer_overlap.store(true);
      std::this_thread::yield();
      if (readers.load() != 0) writer_overlap.store(true);
      lock.release(t);
    }
  });
  for (auto& t : threads) t.join();
  writer.join();
  EXPECT_GE(peak.load(), 2);  // readers truly shared
  EXPECT_FALSE(writer_overlap.load());
  EXPECT_EQ(lock.pending_satisfied_count(), 0u);
}

TEST(SuspendRwRnlp, MixedRequestAllowsConcurrentReaderOnReadPart) {
  SuspendRwRnlp lock(4);
  const LockToken a = lock.acquire(ResourceSet(4, {0}), ResourceSet(4, {1}));
  std::atomic<bool> joined{false};
  std::thread t([&] {
    const LockToken b = lock.acquire(ResourceSet(4, {0}), ResourceSet(4));
    joined.store(true);
    lock.release(b);
  });
  t.join();  // the plain reader of l0 must not block behind the mixed hold
  EXPECT_TRUE(joined.load());
  lock.release(a);
  EXPECT_EQ(lock.pending_satisfied_count(), 0u);
}

TEST(SuspendRwRnlp, OversubscribedRandomWorkloadCompletes) {
  constexpr std::size_t kResources = 4;
  SuspendRwRnlp lock(kResources);
  const unsigned hw = std::thread::hardware_concurrency();
  const int num_threads = static_cast<int>(hw != 0 ? 2 * hw : 8);
  constexpr int kIters = 300;
  std::atomic<long> completed{0};
  std::vector<std::thread> threads;
  for (int ti = 0; ti < num_threads; ++ti) {
    threads.emplace_back([&, ti] {
      Rng rng(77 + static_cast<std::uint64_t>(ti));
      for (int k = 0; k < kIters; ++k) {
        const std::size_t width = 1 + rng.next_below(2);
        ResourceSet rs(kResources);
        for (std::size_t idx : rng.sample_indices(kResources, width))
          rs.set(static_cast<ResourceId>(idx));
        ResourceSet reads(kResources), writes(kResources);
        (rng.chance(0.7) ? reads : writes) = rs;
        const LockToken tok = lock.acquire(reads, writes);
        lock.release(tok);
        completed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(completed.load(), static_cast<long>(num_threads) * kIters);
  EXPECT_EQ(lock.pending_satisfied_count(), 0u);
  EXPECT_EQ(lock.blocked_waiters(), 0u);
}

// Regression: every satisfied_ entry is consumed by its waiter — the set
// must not accumulate entries across many operations (it once could, for
// requests satisfied at issuance whose marks were never erased).
TEST(SuspendRwRnlp, SatisfiedSetDoesNotGrowAcross10kOps) {
  SuspendRwRnlp lock(2);
  std::atomic<long> done{0};
  std::vector<std::thread> threads;
  for (int ti = 0; ti < 2; ++ti) {
    threads.emplace_back([&, ti] {
      Rng rng(5 + static_cast<std::uint64_t>(ti));
      for (int k = 0; k < 5000; ++k) {
        ResourceSet rs(2, {static_cast<ResourceId>(rng.next_below(2))});
        ResourceSet none(2);
        const bool read = rng.chance(0.8);
        const LockToken tok =
            read ? lock.acquire(rs, none) : lock.acquire(none, rs);
        lock.release(tok);
        done.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(done.load(), 10000);
  EXPECT_EQ(lock.pending_satisfied_count(), 0u);
}

// The thundering-herd fix: releases that satisfy no blocked waiter must not
// broadcast.  One reader parks behind a write hold on l0; one hundred
// unrelated read sections on l1 come and go; only the final write release
// (which actually satisfies the parked reader) may wake anyone.
TEST(SuspendRwRnlp, ReleasesThatSatisfyNobodyWakeNobody) {
  SuspendRwRnlp lock(2);
  const LockToken w = lock.acquire(ResourceSet(2), ResourceSet(2, {0}));

  std::atomic<bool> reader_done{false};
  std::thread reader([&] {
    const LockToken r = lock.acquire(ResourceSet(2, {0}), ResourceSet(2));
    reader_done.store(true);
    lock.release(r);
  });
  ASSERT_TRUE(eventually([&] { return lock.blocked_waiters() == 1; }));
  EXPECT_EQ(lock.notify_count(), 0u);

  for (int k = 0; k < 100; ++k) {
    const LockToken r1 = lock.acquire(ResourceSet(2, {1}), ResourceSet(2));
    lock.release(r1);
  }
  // A naive notify_all-per-release would have broadcast 100 times by now.
  EXPECT_EQ(lock.notify_count(), 0u);
  EXPECT_FALSE(reader_done.load());

  lock.release(w);  // satisfies the parked reader -> exactly one broadcast
  reader.join();
  EXPECT_TRUE(reader_done.load());
  EXPECT_EQ(lock.notify_count(), 1u);
  EXPECT_GE(lock.wakeup_count(), 1u);
  EXPECT_EQ(lock.pending_satisfied_count(), 0u);
  EXPECT_EQ(lock.blocked_waiters(), 0u);
}

// Writers on the same resource serialize in FIFO order under suspension.
TEST(SuspendRwRnlp, WritersSerializeFifo) {
  SuspendRwRnlp lock(1);
  std::vector<int> order;
  std::mutex order_mu;
  const LockToken w0 = lock.acquire(ResourceSet(1), ResourceSet(1, {0}));
  std::thread t1([&] {
    const LockToken w = lock.acquire(ResourceSet(1), ResourceSet(1, {0}));
    {
      std::lock_guard<std::mutex> g(order_mu);
      order.push_back(1);
    }
    lock.release(w);
  });
  ASSERT_TRUE(eventually([&] { return lock.blocked_waiters() == 1; }));
  std::thread t2([&] {
    const LockToken w = lock.acquire(ResourceSet(1), ResourceSet(1, {0}));
    {
      std::lock_guard<std::mutex> g(order_mu);
      order.push_back(2);
    }
    lock.release(w);
  });
  ASSERT_TRUE(eventually([&] { return lock.blocked_waiters() == 2; }));
  lock.release(w0);
  t1.join();
  t2.join();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);  // timestamp order, not wakeup luck
  EXPECT_EQ(order[1], 2);
}

}  // namespace
}  // namespace rwrnlp::locks
