// Concurrency tests for the upgradeable-request API of SpinRwRnlp
// (Sec. 3.6 at the user-space lock level).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "locks/spin_rw_rnlp.hpp"
#include "util/rng.hpp"

namespace rwrnlp::locks {
namespace {

TEST(UpgradeableLock, SingleThreadAbandon) {
  SpinRwRnlp lock(2);
  auto tok = lock.acquire_upgradeable(ResourceSet(2, {0, 1}));
  EXPECT_FALSE(tok.write_mode);
  lock.abandon(tok);
  // Everything released: a writer proceeds immediately.
  const LockToken w = lock.acquire(ResourceSet(2), ResourceSet(2, {0, 1}));
  lock.release(w);
}

TEST(UpgradeableLock, SingleThreadUpgrade) {
  SpinRwRnlp lock(2);
  auto tok = lock.acquire_upgradeable(ResourceSet(2, {0}));
  ASSERT_FALSE(tok.write_mode);
  lock.upgrade(tok);
  EXPECT_TRUE(tok.write_mode);
  lock.release_upgraded(tok);
}

TEST(UpgradeableLock, ApiMisuseRejected) {
  SpinRwRnlp lock(1);
  auto tok = lock.acquire_upgradeable(ResourceSet(1, {0}));
  ASSERT_FALSE(tok.write_mode);
  EXPECT_THROW(lock.release_upgraded(tok), std::invalid_argument);
  lock.upgrade(tok);
  EXPECT_THROW(lock.upgrade(tok), std::invalid_argument);
  EXPECT_THROW(lock.abandon(tok), std::invalid_argument);
  lock.release_upgraded(tok);
}

TEST(UpgradeableLock, ConcurrentCheckThenUpdateInvariant) {
  // The canonical use: decrement-if-positive.  The commit segment re-reads
  // (Sec. 3.6 caveat), so the counter never goes negative and the final
  // value matches the number of successful decrements exactly.
  SpinRwRnlp lock(1);
  long counter = 900;
  std::atomic<long> decrements{0};
  std::vector<std::thread> threads;
  for (int ti = 0; ti < 4; ++ti) {
    threads.emplace_back([&] {
      for (int k = 0; k < 350; ++k) {
        auto tok = lock.acquire_upgradeable(ResourceSet(1, {0}));
        bool need_write;
        if (tok.write_mode) {
          need_write = true;  // write half won: we already hold write locks
        } else {
          need_write = counter > 0;
          if (!need_write) {
            lock.abandon(tok);
            continue;
          }
          lock.upgrade(tok);
        }
        if (need_write) {
          if (counter > 0) {  // re-read under write locks
            --counter;
            decrements.fetch_add(1, std::memory_order_relaxed);
          }
          lock.release_upgraded(tok);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_GE(counter, 0);
  EXPECT_EQ(counter, 900 - decrements.load());
}

TEST(UpgradeableLock, MixesWithPlainReadersAndWriters) {
  SpinRwRnlp lock(3);
  std::atomic<bool> stop{false};
  std::atomic<long> ops{0};
  long cells[3] = {0, 0, 0};

  std::vector<std::thread> threads;
  // Plain readers and writers churn on all three resources.
  for (int ti = 0; ti < 2; ++ti) {
    threads.emplace_back([&, ti] {
      Rng rng(900 + ti);
      while (!stop.load(std::memory_order_relaxed)) {
        ResourceSet rs(3);
        rs.set(static_cast<ResourceId>(rng.next_below(3)));
        if (rng.chance(0.5)) {
          const LockToken t = lock.acquire(rs, ResourceSet(3));
          lock.release(t);
        } else {
          const LockToken t = lock.acquire(ResourceSet(3), rs);
          rs.for_each([&](ResourceId r) { ++cells[r]; });
          lock.release(t);
        }
        ops.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Upgradeable transactions over all three.
  std::thread upgrader([&] {
    Rng rng(901);
    for (int k = 0; k < 400; ++k) {
      auto tok = lock.acquire_upgradeable(ResourceSet(3, {0, 1, 2}));
      if (!tok.write_mode) {
        if (rng.chance(0.5)) {
          lock.abandon(tok);
          continue;
        }
        lock.upgrade(tok);
      }
      for (long& c : cells) ++c;
      lock.release_upgraded(tok);
    }
    stop.store(true);
  });
  upgrader.join();
  for (auto& t : threads) t.join();
  EXPECT_GT(ops.load(), 0);
  EXPECT_GT(cells[0] + cells[1] + cells[2], 0);
}

}  // namespace
}  // namespace rwrnlp::locks
