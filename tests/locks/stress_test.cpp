// Multi-threaded stress tests for the concurrent R/W RNLP wrappers: mixed
// readers/writers/upgrades over randomized resource sets, with mutual
// exclusion checked two ways — a per-resource writer/reader census kept in
// atomics, and a torn-counter check on plain (non-atomic) per-resource data
// that ThreadSanitizer instruments when the suite is built with
// -DRWRNLP_SANITIZE=ON.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "locks/sharded_rw_rnlp.hpp"
#include "locks/spin_rw_rnlp.hpp"
#include "util/rng.hpp"

namespace rwrnlp::locks {
namespace {

constexpr std::size_t kQ = 8;

struct SharedState {
  // Census: how many threads currently hold each resource in each mode.
  std::atomic<int> writers[kQ] = {};
  std::atomic<int> readers[kQ] = {};
  std::atomic<bool> violated{false};
  // Torn-counter cells: written only under a write lock; a reader under a
  // read lock must observe cell[0] == cell[1].  Plain memory on purpose:
  // if the protocol ever admits a racing reader/writer pair, TSan flags the
  // access and the equality check fails.
  std::uint64_t cells[kQ][2] = {};

  void enter_write(const ResourceSet& writes) {
    writes.for_each([&](ResourceId l) {
      if (writers[l].fetch_add(1) != 0 || readers[l].load() != 0)
        violated = true;
      ++cells[l][0];
      ++cells[l][1];
    });
  }
  void exit_write(const ResourceSet& writes) {
    writes.for_each([&](ResourceId l) { writers[l].fetch_sub(1); });
  }
  void enter_read(const ResourceSet& reads) {
    reads.for_each([&](ResourceId l) {
      readers[l].fetch_add(1);
      if (writers[l].load() != 0) violated = true;
      if (cells[l][0] != cells[l][1]) violated = true;
    });
  }
  void exit_read(const ResourceSet& reads) {
    reads.for_each([&](ResourceId l) { readers[l].fetch_sub(1); });
  }
};

ResourceSet random_set(Rng& rng, std::size_t q, ResourceId base,
                       std::size_t span, std::size_t max_size) {
  ResourceSet rs(q);
  const std::size_t n = 1 + rng.next_below(max_size);
  for (std::size_t i = 0; i < n; ++i)
    rs.set(base + static_cast<ResourceId>(rng.next_below(span)));
  return rs;
}

/// One worker: randomized reads, writes, mixed requests, and upgradeable
/// requests over resources [base, base+span).
void worker(MultiResourceLock& lock, SpinRwRnlp* upgrader, SharedState& st,
            std::uint64_t seed, ResourceId base, std::size_t span, int ops) {
  Rng rng(seed);
  const std::size_t q = lock.num_resources();
  for (int i = 0; i < ops; ++i) {
    const std::uint64_t kind = rng.next_below(10);
    if (kind < 5) {  // read
      const ResourceSet rs = random_set(rng, q, base, span, 3);
      LockToken t = lock.acquire(rs, ResourceSet(q));
      st.enter_read(rs);
      st.exit_read(rs);
      lock.release(t);
    } else if (kind < 8) {  // write
      const ResourceSet rs = random_set(rng, q, base, span, 2);
      LockToken t = lock.acquire(ResourceSet(q), rs);
      st.enter_write(rs);
      st.exit_write(rs);
      lock.release(t);
    } else if (kind < 9) {  // mixed (disjoint read and write sets)
      const ResourceSet writes = random_set(rng, q, base, span, 2);
      ResourceSet reads = random_set(rng, q, base, span, 2);
      reads -= writes;
      LockToken t = lock.acquire(reads, writes);
      st.enter_read(reads);
      st.enter_write(writes);
      st.exit_write(writes);
      st.exit_read(reads);
      lock.release(t);
    } else if (upgrader != nullptr) {  // upgradeable
      const ResourceSet rs = random_set(rng, q, base, span, 2);
      SpinRwRnlp::UpgradeToken t = upgrader->acquire_upgradeable(rs);
      if (t.write_mode) {
        st.enter_write(rs);
        st.exit_write(rs);
        upgrader->release_upgraded(t);
      } else {
        st.enter_read(rs);
        st.exit_read(rs);
        if (rng.chance(0.5)) {
          upgrader->upgrade(t);
          st.enter_write(rs);
          st.exit_write(rs);
          upgrader->release_upgraded(t);
        } else {
          upgrader->abandon(t);
        }
      }
    }
  }
}

TEST(SpinRwRnlpStress, MixedReadersWritersUpgrades) {
  SpinRwRnlp lock(kQ);
  SharedState st;
  constexpr int kThreads = 4;
  constexpr int kOps = 800;
  std::vector<std::thread> pool;
  for (int i = 0; i < kThreads; ++i)
    pool.emplace_back([&, i] {
      worker(lock, &lock, st, 1000 + static_cast<std::uint64_t>(i), 0, kQ,
             kOps);
    });
  for (auto& t : pool) t.join();
  EXPECT_FALSE(st.violated.load()) << "mutual exclusion violated";
  for (std::size_t l = 0; l < kQ; ++l) {
    EXPECT_EQ(st.writers[l].load(), 0);
    EXPECT_EQ(st.readers[l].load(), 0);
    EXPECT_EQ(st.cells[l][0], st.cells[l][1]);
  }
}

TEST(SpinRwRnlpStress, FastPathOffMatchesSameInvariants) {
  SpinRwRnlp lock(kQ);
  lock.set_read_fast_path(false);
  SharedState st;
  std::vector<std::thread> pool;
  for (int i = 0; i < 4; ++i)
    pool.emplace_back([&, i] {
      worker(lock, &lock, st, 2000 + static_cast<std::uint64_t>(i), 0, kQ,
             500);
    });
  for (auto& t : pool) t.join();
  EXPECT_FALSE(st.violated.load());
}

TEST(ShardedRwRnlpStress, PerComponentWorkers) {
  // Two components of four resources; two workers per component issue
  // component-local randomized requests (no upgrades: ShardedRwRnlp routes
  // through the MultiResourceLock interface).
  ResourceSet lo(kQ), hi(kQ);
  for (ResourceId l = 0; l < 4; ++l) lo.set(l);
  for (ResourceId l = 4; l < 8; ++l) hi.set(l);
  ShardedRwRnlp lock(kQ, {lo, hi});
  SharedState st;
  std::vector<std::thread> pool;
  for (int i = 0; i < 4; ++i) {
    const ResourceId base = (i % 2 == 0) ? 0 : 4;
    pool.emplace_back([&, i, base] {
      worker(lock, nullptr, st, 3000 + static_cast<std::uint64_t>(i), base, 4,
             800);
    });
  }
  for (auto& t : pool) t.join();
  EXPECT_FALSE(st.violated.load()) << "mutual exclusion violated";
  for (std::size_t l = 0; l < kQ; ++l) {
    EXPECT_EQ(st.writers[l].load(), 0);
    EXPECT_EQ(st.readers[l].load(), 0);
    EXPECT_EQ(st.cells[l][0], st.cells[l][1]);
  }
}

}  // namespace
}  // namespace rwrnlp::locks
