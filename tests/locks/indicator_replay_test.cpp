// Byte-equal oracle replay of reader-indicator runs.
//
// With an invocation log installed, indicator fast grants are issued through
// the engine under the mutex (as IssueReadIndicator records) so the log is a
// complete sequential history.  Replaying it through a fresh validating
// engine must reproduce the live trace byte-for-byte — and every
// IssueReadIndicator must satisfy the engine's own R1 precondition at its
// point in the history, which is exactly the R1-equivalence claim of
// DESIGN.md §11: a writer that could falsify it is either pre-engine
// (sweep-blocked on the reader's published cell) or already departed.
#include <gtest/gtest.h>

#include <chrono>
#include <random>
#include <thread>
#include <vector>

#include "locks/invocation_log.hpp"
#include "locks/spin_rw_rnlp.hpp"
#include "locks/suspend_rw_rnlp.hpp"
#include "support/harness.hpp"
#include "testing/oracle.hpp"

namespace rwrnlp::locks {
namespace {

using namespace std::chrono_literals;
using support::expect_engine_drained;

constexpr std::size_t kResources = 4;
constexpr std::size_t kThreads = 4;
constexpr int kIters = 60;

/// The shared mixed workload in its read-heavy shape: most requests are
/// read-only (indicator candidates), with enough writers that sweeps,
/// retractions, and fallbacks all occur, and only write-carrying requests
/// drawing the timed coin (exercising the writer guard's timeout depart).
template <typename Lock>
void run_workload(Lock& lock, unsigned seed_base) {
  support::MixedWorkloadOptions o;
  o.resources = kResources;
  o.threads = kThreads;
  o.iters = kIters;
  o.coin_sides = 8;
  o.read_below = 5;
  o.write_below = 7;
  o.timed_writers_only = true;
  support::run_mixed_timed_workload(lock, seed_base, o);
}

testing::OracleOptions oracle_options() {
  testing::OracleOptions oo;
  oo.num_threads = kThreads;
  oo.ops_per_thread = kIters;
  return oo;
}

TEST(IndicatorReplay, SpinIndicatorReplaysByteEqual) {
  SpinRwRnlp lock(kResources);
  lock.enable_reader_indicator();
  InvocationLog log;
  lock.engine_for_test().set_trace_recording(true);
  lock.set_invocation_log(&log);
  run_workload(lock, 0xD1CE);
  expect_engine_drained(lock.engine_for_test(), kResources);
  // The indicator really carried traffic in this run.
  EXPECT_GT(lock.health_report().indicator_fast_hits, 0u);
  testing::verify_replay(lock.engine_for_test(), log, oracle_options());
}

TEST(IndicatorReplay, SpinIndicatorWithCombiningReplays) {
  SpinRwRnlp lock(kResources, rsm::WriteExpansion::ExpandDomain,
                  /*reads_as_writes=*/false, /*combining=*/true);
  lock.enable_reader_indicator();
  InvocationLog log;
  lock.engine_for_test().set_trace_recording(true);
  lock.set_invocation_log(&log);
  run_workload(lock, 0xA11E);
  expect_engine_drained(lock.engine_for_test(), kResources);
  testing::verify_replay(lock.engine_for_test(), log, oracle_options());
}

TEST(IndicatorReplay, SpinIndicatorPlaceholdersReplay) {
  SpinRwRnlp lock(kResources, rsm::WriteExpansion::Placeholders);
  lock.enable_reader_indicator();
  InvocationLog log;
  lock.engine_for_test().set_trace_recording(true);
  lock.set_invocation_log(&log);
  run_workload(lock, 0xBEE5);
  expect_engine_drained(lock.engine_for_test(), kResources);
  testing::verify_replay(lock.engine_for_test(), log, oracle_options());
}

TEST(IndicatorReplay, SuspendIndicatorReplays) {
  SuspendRwRnlp lock(kResources, rsm::WriteExpansion::ExpandDomain);
  lock.enable_reader_indicator();
  InvocationLog log;
  lock.engine_for_test().set_trace_recording(true);
  lock.set_invocation_log(&log);
  run_workload(lock, 0xFEED);
  EXPECT_EQ(lock.blocked_waiters(), 0u);
  expect_engine_drained(lock.engine_for_test(), kResources);
  testing::verify_replay(lock.engine_for_test(), log, oracle_options());
}

// Control: identical workload and seed through the classic front end — the
// indicator changes the concurrency structure, never the protocol history's
// legality.
TEST(IndicatorReplay, ClassicControlReplays) {
  SpinRwRnlp lock(kResources);
  InvocationLog log;
  lock.engine_for_test().set_trace_recording(true);
  lock.set_invocation_log(&log);
  run_workload(lock, 0xD1CE);
  expect_engine_drained(lock.engine_for_test(), kResources);
  testing::verify_replay(lock.engine_for_test(), log, oracle_options());
}

}  // namespace
}  // namespace rwrnlp::locks
