// Byte-equal oracle replay of reader-indicator runs.
//
// With an invocation log installed, indicator fast grants are issued through
// the engine under the mutex (as IssueReadIndicator records) so the log is a
// complete sequential history.  Replaying it through a fresh validating
// engine must reproduce the live trace byte-for-byte — and every
// IssueReadIndicator must satisfy the engine's own R1 precondition at its
// point in the history, which is exactly the R1-equivalence claim of
// DESIGN.md §11: a writer that could falsify it is either pre-engine
// (sweep-blocked on the reader's published cell) or already departed.
#include <gtest/gtest.h>

#include <chrono>
#include <random>
#include <thread>
#include <vector>

#include "locks/invocation_log.hpp"
#include "locks/spin_rw_rnlp.hpp"
#include "locks/suspend_rw_rnlp.hpp"
#include "testing/oracle.hpp"

namespace rwrnlp::locks {
namespace {

using namespace std::chrono_literals;

constexpr std::size_t kResources = 4;
constexpr std::size_t kThreads = 4;
constexpr int kIters = 60;

void expect_engine_drained(rsm::Engine& engine, std::size_t q) {
  EXPECT_EQ(engine.incomplete_count(), 0u);
  for (ResourceId l = 0; l < q; ++l) {
    EXPECT_TRUE(engine.read_holders(l).empty()) << "resource " << l;
    EXPECT_FALSE(engine.write_locked(l)) << "resource " << l;
    EXPECT_TRUE(engine.write_queue(l).empty()) << "resource " << l;
    EXPECT_EQ(engine.read_queue_depth(l), 0u) << "resource " << l;
  }
}

/// Read-heavy mixed workload: most requests are read-only (indicator
/// candidates), with enough writers that sweeps, retractions, and fallbacks
/// all occur.  A timed subset exercises the writer guard's timeout depart.
template <typename Lock>
void run_workload(Lock& lock, unsigned seed_base) {
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      std::mt19937 rng(seed_base + static_cast<unsigned>(tid));
      std::uniform_int_distribution<int> coin(0, 7);
      std::uniform_int_distribution<std::size_t> pick(0, kResources - 1);
      for (int k = 0; k < kIters; ++k) {
        ResourceSet reads(kResources);
        ResourceSet writes(kResources);
        const int c = coin(rng);
        if (c < 5) {
          reads.set(pick(rng));
          reads.set(pick(rng));
        } else if (c < 7) {
          writes.set(pick(rng));
        } else {  // mixed, disjoint by construction
          const std::size_t w = pick(rng);
          writes.set(w);
          const std::size_t r = pick(rng);
          if (r != w) reads.set(r);
        }
        if (!writes.empty() && coin(rng) == 0) {  // timed writer
          auto tok = lock.try_lock_for(reads, writes, 30us);
          if (tok) {
            std::this_thread::sleep_for(5us);
            lock.release(*tok);
          }
        } else {
          const LockToken tok = lock.acquire(reads, writes);
          std::this_thread::sleep_for(5us);
          lock.release(tok);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
}

testing::OracleOptions oracle_options() {
  testing::OracleOptions oo;
  oo.num_threads = kThreads;
  oo.ops_per_thread = kIters;
  return oo;
}

TEST(IndicatorReplay, SpinIndicatorReplaysByteEqual) {
  SpinRwRnlp lock(kResources);
  lock.enable_reader_indicator();
  InvocationLog log;
  lock.engine_for_test().set_trace_recording(true);
  lock.set_invocation_log(&log);
  run_workload(lock, 0xD1CE);
  expect_engine_drained(lock.engine_for_test(), kResources);
  // The indicator really carried traffic in this run.
  EXPECT_GT(lock.health_report().indicator_fast_hits, 0u);
  testing::verify_replay(lock.engine_for_test(), log, oracle_options());
}

TEST(IndicatorReplay, SpinIndicatorWithCombiningReplays) {
  SpinRwRnlp lock(kResources, rsm::WriteExpansion::ExpandDomain,
                  /*reads_as_writes=*/false, /*combining=*/true);
  lock.enable_reader_indicator();
  InvocationLog log;
  lock.engine_for_test().set_trace_recording(true);
  lock.set_invocation_log(&log);
  run_workload(lock, 0xA11E);
  expect_engine_drained(lock.engine_for_test(), kResources);
  testing::verify_replay(lock.engine_for_test(), log, oracle_options());
}

TEST(IndicatorReplay, SpinIndicatorPlaceholdersReplay) {
  SpinRwRnlp lock(kResources, rsm::WriteExpansion::Placeholders);
  lock.enable_reader_indicator();
  InvocationLog log;
  lock.engine_for_test().set_trace_recording(true);
  lock.set_invocation_log(&log);
  run_workload(lock, 0xBEE5);
  expect_engine_drained(lock.engine_for_test(), kResources);
  testing::verify_replay(lock.engine_for_test(), log, oracle_options());
}

TEST(IndicatorReplay, SuspendIndicatorReplays) {
  SuspendRwRnlp lock(kResources, rsm::WriteExpansion::ExpandDomain);
  lock.enable_reader_indicator();
  InvocationLog log;
  lock.engine_for_test().set_trace_recording(true);
  lock.set_invocation_log(&log);
  run_workload(lock, 0xFEED);
  EXPECT_EQ(lock.blocked_waiters(), 0u);
  expect_engine_drained(lock.engine_for_test(), kResources);
  testing::verify_replay(lock.engine_for_test(), log, oracle_options());
}

// Control: identical workload and seed through the classic front end — the
// indicator changes the concurrency structure, never the protocol history's
// legality.
TEST(IndicatorReplay, ClassicControlReplays) {
  SpinRwRnlp lock(kResources);
  InvocationLog log;
  lock.engine_for_test().set_trace_recording(true);
  lock.set_invocation_log(&log);
  run_workload(lock, 0xD1CE);
  expect_engine_drained(lock.engine_for_test(), kResources);
  testing::verify_replay(lock.engine_for_test(), log, oracle_options());
}

}  // namespace
}  // namespace rwrnlp::locks
