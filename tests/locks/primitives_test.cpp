// Stress tests for the spin-lock primitives (ticket mutex, phase-fair R/W
// ticket lock).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "locks/phase_fair.hpp"
#include "locks/task_fair.hpp"
#include "locks/ticket_mutex.hpp"

namespace rwrnlp::locks {
namespace {

TEST(TicketMutex, MutualExclusionUnderContention) {
  TicketMutex m;
  long counter = 0;  // deliberately non-atomic
  constexpr int kThreads = 4;
  constexpr int kIters = 8000;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      for (int k = 0; k < kIters; ++k) {
        m.lock();
        ++counter;
        m.unlock();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIters);
}

TEST(TicketMutex, TryLock) {
  TicketMutex m;
  EXPECT_TRUE(m.try_lock());
  EXPECT_FALSE(m.try_lock());
  m.unlock();
  EXPECT_TRUE(m.try_lock());
  m.unlock();
}

TEST(PhaseFair, WriterExclusionAndReaderConsistency) {
  PhaseFairLock l;
  // Writers keep two variables equal; readers must never observe a tear.
  long a = 0, b = 0;
  std::atomic<bool> torn{false};
  constexpr int kWriters = 2, kReaders = 4, kIters = 6000;
  std::vector<std::thread> threads;
  for (int i = 0; i < kWriters; ++i) {
    threads.emplace_back([&] {
      for (int k = 0; k < kIters; ++k) {
        l.write_lock();
        ++a;
        ++b;
        l.write_unlock();
      }
    });
  }
  for (int i = 0; i < kReaders; ++i) {
    threads.emplace_back([&] {
      for (int k = 0; k < kIters; ++k) {
        l.read_lock();
        if (a != b) torn.store(true);
        l.read_unlock();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(torn.load());
  EXPECT_EQ(a, static_cast<long>(kWriters) * kIters);
  EXPECT_EQ(b, a);
}

TEST(PhaseFair, ReadersRunConcurrently) {
  PhaseFairLock l;
  std::atomic<int> inside{0};
  std::atomic<int> peak{0};
  constexpr int kReaders = 6;
  std::vector<std::thread> threads;
  for (int i = 0; i < kReaders; ++i) {
    threads.emplace_back([&] {
      for (int k = 0; k < 400; ++k) {
        l.read_lock();
        const int now = inside.fetch_add(1) + 1;
        int p = peak.load();
        while (now > p && !peak.compare_exchange_weak(p, now)) {
        }
        // Hold the read lock across a yield so other readers can join even
        // on a single-core host.
        std::this_thread::yield();
        inside.fetch_sub(1);
        l.read_unlock();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_GE(peak.load(), 2);
}

TEST(PhaseFair, WriterNotStarvedByReaderStream) {
  // Phase-fairness: with a continuous stream of readers, a writer still
  // gets in (a reader arriving after the writer waits for the next phase).
  PhaseFairLock l;
  std::atomic<bool> writer_done{false};
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int i = 0; i < 4; ++i) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        l.read_lock();
        cpu_relax();
        l.read_unlock();
      }
    });
  }
  std::thread writer([&] {
    for (int k = 0; k < 200; ++k) {
      l.write_lock();
      l.write_unlock();
    }
    writer_done.store(true);
  });
  // The writer must finish despite the reader stream.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (!writer_done.load() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop.store(true);
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_TRUE(writer_done.load());
}

TEST(TaskFair, WriterExclusionAndReaderConsistency) {
  TaskFairLock l;
  long a = 0, b = 0;
  std::atomic<bool> torn{false};
  constexpr int kWriters = 2, kReaders = 4, kIters = 5000;
  std::vector<std::thread> threads;
  for (int i = 0; i < kWriters; ++i) {
    threads.emplace_back([&] {
      for (int k = 0; k < kIters; ++k) {
        l.write_lock();
        ++a;
        ++b;
        l.write_unlock();
      }
    });
  }
  for (int i = 0; i < kReaders; ++i) {
    threads.emplace_back([&] {
      for (int k = 0; k < kIters; ++k) {
        l.read_lock();
        if (a != b) torn.store(true);
        l.read_unlock();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(torn.load());
  EXPECT_EQ(a, static_cast<long>(kWriters) * kIters);
  EXPECT_EQ(b, a);
}

TEST(TaskFair, ConsecutiveReadersShare) {
  TaskFairLock l;
  std::atomic<int> inside{0}, peak{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&] {
      for (int k = 0; k < 400; ++k) {
        l.read_lock();
        const int now = inside.fetch_add(1) + 1;
        int p = peak.load();
        while (now > p && !peak.compare_exchange_weak(p, now)) {
        }
        std::this_thread::yield();  // overlap even on one core
        inside.fetch_sub(1);
        l.read_unlock();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_GE(peak.load(), 2);
}

TEST(TaskFair, StrictFifoReaderWaitsBehindQueuedWriter) {
  // The defining difference from phase-fairness: with A read-holding and a
  // writer W queued, a reader C arriving after W waits for W's *entire*
  // critical section even though the lock is only read-held — strict FIFO.
  TaskFairLock l;
  l.read_lock();  // A
  std::atomic<int> w_state{0};
  std::thread w([&] {
    l.write_lock();
    w_state.store(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    l.write_unlock();
    w_state.store(2);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::atomic<int> c_saw{-1};
  std::thread c([&] {
    l.read_lock();
    c_saw.store(w_state.load());
    l.read_unlock();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  l.read_unlock();  // A leaves -> W runs -> only then C
  w.join();
  c.join();
  EXPECT_GE(c_saw.load(), 1);
}

TEST(PhaseFair, ArrivingReaderWaitsForPresentWriter) {
  // Litmus: A read-holds; writer B arrives and waits; reader C arriving
  // after B must not overtake B (reads concede to writes).
  PhaseFairLock l;
  l.read_lock();  // A

  std::atomic<int> b_state{0};  // 0 waiting, 1 acquired, 2 released
  std::thread b([&] {
    l.write_lock();
    b_state.store(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    l.write_unlock();
    b_state.store(2);
  });
  // Give B time to announce presence.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_EQ(b_state.load(), 0);  // still blocked on A

  std::atomic<int> c_observed_b_state{-1};
  std::thread c([&] {
    l.read_lock();
    c_observed_b_state.store(b_state.load());
    l.read_unlock();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  l.read_unlock();  // A leaves; B's write phase runs, then C.
  b.join();
  c.join();
  // C can only have entered after B's write phase started (b_state >= 1).
  EXPECT_GE(c_observed_b_state.load(), 1);
}

}  // namespace
}  // namespace rwrnlp::locks
