// Concurrency stress tests run generically over every MultiResourceLock
// implementation: per-resource reader/writer exclusion is checked with
// atomic instrumentation while many threads issue random requests.
#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "locks/baselines.hpp"
#include "locks/spin_rw_rnlp.hpp"
#include "locks/suspend_rw_rnlp.hpp"
#include "util/rng.hpp"

namespace rwrnlp::locks {
namespace {

constexpr std::size_t kResources = 6;

struct Factory {
  std::string label;
  std::function<std::unique_ptr<MultiResourceLock>()> make;
};

std::vector<Factory> factories() {
  return {
      {"rw_rnlp_expand",
       [] {
         return std::make_unique<SpinRwRnlp>(
             kResources, rsm::WriteExpansion::ExpandDomain);
       }},
      {"rw_rnlp_placeholders",
       [] {
         return std::make_unique<SpinRwRnlp>(
             kResources, rsm::WriteExpansion::Placeholders);
       }},
      {"mutex_rnlp",
       [] {
         return std::make_unique<SpinRwRnlp>(
             kResources, rsm::WriteExpansion::ExpandDomain,
             /*reads_as_writes=*/true);
       }},
      {"group_rw", [] { return std::make_unique<GroupRwLock>(kResources); }},
      {"group_mutex",
       [] { return std::make_unique<GroupMutexLock>(kResources); }},
      {"two_phase",
       [] { return std::make_unique<TwoPhaseLock>(kResources); }},
      {"rw_rnlp_suspend",
       [] { return std::make_unique<SuspendRwRnlp>(kResources); }},
  };
}

class MultiLockStress : public ::testing::TestWithParam<Factory> {};

/// Per-resource instrumented state: >= 0 is the reader count, -1 means a
/// writer holds it.
struct Instrumented {
  std::atomic<int> state{0};

  void enter_read(std::atomic<bool>& violation) {
    const int v = state.fetch_add(1, std::memory_order_acq_rel);
    if (v < 0) violation.store(true);
  }
  void exit_read() { state.fetch_sub(1, std::memory_order_acq_rel); }
  void enter_write(std::atomic<bool>& violation) {
    int expected = 0;
    if (!state.compare_exchange_strong(expected, -1,
                                       std::memory_order_acq_rel)) {
      violation.store(true);
      state.store(-1);  // continue; the flag already records the bug
    }
  }
  void exit_write() { state.store(0, std::memory_order_release); }
};

TEST_P(MultiLockStress, ReaderWriterExclusionUnderRandomRequests) {
  auto lock = GetParam().make();
  const bool mutex_flavor = lock->name() == "mutex-rnlp" ||
                            lock->name() == "group-mutex";
  std::vector<Instrumented> state(kResources);
  std::atomic<bool> violation{false};
  std::atomic<long> completed{0};
  constexpr int kThreads = 4;
  constexpr int kIters = 1200;

  std::vector<std::thread> threads;
  for (int ti = 0; ti < kThreads; ++ti) {
    threads.emplace_back([&, ti] {
      Rng rng(1000 + static_cast<std::uint64_t>(ti));
      for (int k = 0; k < kIters; ++k) {
        const std::size_t width = 1 + rng.next_below(3);
        ResourceSet rs(kResources);
        for (std::size_t idx : rng.sample_indices(kResources, width))
          rs.set(static_cast<ResourceId>(idx));
        const bool is_read = rng.chance(0.6);
        ResourceSet reads(kResources), writes(kResources);
        (is_read ? reads : writes) = rs;
        const LockToken tok = lock->acquire(reads, writes);
        // Mutex-flavoured locks give writer-grade access even for reads.
        const bool as_write = !is_read || mutex_flavor;
        rs.for_each([&](ResourceId r) {
          if (as_write) {
            state[r].enter_write(violation);
          } else {
            state[r].enter_read(violation);
          }
        });
        for (int spin = 0; spin < 20; ++spin) cpu_relax();
        rs.for_each([&](ResourceId r) {
          if (as_write) {
            state[r].exit_write();
          } else {
            state[r].exit_read();
          }
        });
        lock->release(tok);
        completed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(violation.load()) << lock->name();
  EXPECT_EQ(completed.load(), static_cast<long>(kThreads) * kIters);
}

INSTANTIATE_TEST_SUITE_P(
    AllLocks, MultiLockStress, ::testing::ValuesIn(factories()),
    [](const ::testing::TestParamInfo<Factory>& info) {
      return info.param.label;
    });

TEST(SpinRwRnlp, MixedRequestsLockModesCorrectly) {
  SpinRwRnlp lock(4, rsm::WriteExpansion::Placeholders);
  std::atomic<int> r0_readers{0};
  std::atomic<bool> ok{true};

  // Thread A takes a mixed request: read {l0}, write {l1}.
  ResourceSet a_reads(4, {0}), a_writes(4, {1});
  const LockToken a = lock.acquire(a_reads, a_writes);
  // Concurrent plain reader of l0 should be able to join.
  std::thread t([&] {
    const LockToken b = lock.acquire(ResourceSet(4, {0}), ResourceSet(4));
    r0_readers.fetch_add(1);
    lock.release(b);
  });
  t.join();
  EXPECT_EQ(r0_readers.load(), 1);
  EXPECT_TRUE(ok.load());
  lock.release(a);
}

TEST(SpinRwRnlp, WritersSerializeReadersShare) {
  SpinRwRnlp lock(2);
  std::atomic<int> concurrent_readers{0};
  std::atomic<int> peak{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 6; ++i) {
    threads.emplace_back([&] {
      for (int k = 0; k < 200; ++k) {
        const LockToken t =
            lock.acquire(ResourceSet(2, {0}), ResourceSet(2));
        const int now = concurrent_readers.fetch_add(1) + 1;
        int p = peak.load();
        while (now > p && !peak.compare_exchange_weak(p, now)) {
        }
        // Yield while holding the read lock so readers overlap even on a
        // single-core host.
        std::this_thread::yield();
        concurrent_readers.fetch_sub(1);
        lock.release(t);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_GE(peak.load(), 2);  // readers truly shared the resource
}

TEST(SpinRwRnlp, NameReflectsVariant) {
  SpinRwRnlp rw(2);
  SpinRwRnlp mtx(2, rsm::WriteExpansion::ExpandDomain, true);
  EXPECT_EQ(rw.name(), "rw-rnlp");
  EXPECT_EQ(mtx.name(), "mutex-rnlp");
}

TEST(TwoPhaseLock, DisjointWritersProceedConcurrently) {
  TwoPhaseLock lock(2);
  const LockToken a = lock.acquire(ResourceSet(2), ResourceSet(2, {0}));
  std::atomic<bool> acquired{false};
  std::thread t([&] {
    const LockToken b = lock.acquire(ResourceSet(2), ResourceSet(2, {1}));
    acquired.store(true);
    lock.release(b);
  });
  t.join();  // must not deadlock: disjoint resources
  EXPECT_TRUE(acquired.load());
  lock.release(a);
}

}  // namespace
}  // namespace rwrnlp::locks
