// Distributed reader-indicator fast path (reader_indicator.hpp).
//
// Functional coverage for the mutex-free read path on all three front ends:
// fast grants and their counters, writer-present revocation (publish vs
// sweep), retract-and-fallback, the writer guard on the classic / combined /
// timed / upgradeable paths, and the sharded composition with cross-shard
// combining.  The multi-threaded tests double as the TSan stress surface
// (CI leg tsan-readfast): readers publish/retract against concurrently
// sweeping writers while a seqlock-style invariant checks exclusion.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "locks/reader_indicator.hpp"
#include "locks/sharded_rw_rnlp.hpp"
#include "locks/spin_rw_rnlp.hpp"
#include "locks/suspend_rw_rnlp.hpp"

namespace rwrnlp::locks {
namespace {

using namespace std::chrono_literals;

// ------------------------------------------------------------- raw layer ---

TEST(ReaderIndicator, PublishExitCensus) {
  ReaderIndicator ind(4);
  EXPECT_EQ(ind.published_total(), 0u);
  bool retracted = false;
  ReaderIndicator::GrantSlot* g =
      ind.try_enter(ResourceSet(4, {0, 2}), &retracted);
  ASSERT_NE(g, nullptr);
  EXPECT_FALSE(retracted);
  EXPECT_EQ(ind.published_total(), 2u);  // one cell per published resource
  ind.exit(g);
  EXPECT_EQ(ind.published_total(), 0u);
}

TEST(ReaderIndicator, WriterPresenceDeclinesEntry) {
  ReaderIndicator ind(4);
  const ResourceSet guard(4, {1});
  ind.writer_arrive(guard);
  ind.writer_sweep(guard);  // nothing published: returns immediately
  bool retracted = false;
  EXPECT_EQ(ind.try_enter(ResourceSet(4, {1}), &retracted), nullptr);
  // Disjoint resources are unaffected by the writer.
  ReaderIndicator::GrantSlot* g =
      ind.try_enter(ResourceSet(4, {0}), &retracted);
  ASSERT_NE(g, nullptr);
  ind.exit(g);
  ind.writer_depart(guard);
  g = ind.try_enter(ResourceSet(4, {1}), &retracted);
  ASSERT_NE(g, nullptr);
  ind.exit(g);
}

TEST(ReaderIndicator, SweepWaitsForPublishedReader) {
  ReaderIndicator ind(2);
  bool retracted = false;
  ReaderIndicator::GrantSlot* g =
      ind.try_enter(ResourceSet(2, {0}), &retracted);
  ASSERT_NE(g, nullptr);
  const ResourceSet guard(2, {0});
  ind.writer_arrive(guard);
  std::atomic<bool> swept{false};
  std::thread writer([&] {
    ind.writer_sweep(guard);
    swept.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(2ms);
  EXPECT_FALSE(swept.load(std::memory_order_acquire));
  ind.exit(g);  // reader leaves: the sweep must now complete
  writer.join();
  EXPECT_TRUE(swept.load(std::memory_order_acquire));
  ind.writer_depart(guard);
}

// ------------------------------------------------------------ SNZI tree ----

TEST(SnziTree, RootTracksLeafSurplus) {
  ReaderIndicator ind(4);
  EXPECT_EQ(ind.root_total(), 0u);
  bool retracted = false;
  ReaderIndicator::GrantSlot* g =
      ind.try_enter(ResourceSet(4, {0, 2}), &retracted);
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(ind.root_surplus(0), 1u);
  EXPECT_EQ(ind.root_surplus(1), 0u);
  EXPECT_EQ(ind.root_surplus(2), 1u);
  EXPECT_EQ(ind.root_total(), 2u);
  ind.exit(g);
  EXPECT_EQ(ind.root_total(), 0u);
}

// Piggyback arrivals share a root increment: a thread holds at most one
// grant (slot claims are per-thread), so pigeonhole 17 concurrent holders
// over the kStripes = 8 leaf stripes — at least two land on one stripe, and
// the second arrive there takes the piggyback path (leaf CAS v -> v+1,
// v >= 2) without touching the root.  The root therefore counts nonzero
// *stripes*, bounded by kStripes, while the leaf census counts readers.
// Intermediate departs must leave the root set; only the last departer on a
// stripe retires its root increment, so the census drains to exactly zero.
TEST(SnziTree, PiggybackArriveSharesRootIncrement) {
  ReaderIndicator ind(2);
  constexpr std::size_t kHolders = 17;  // > kStripes forces a collision
  std::atomic<std::size_t> entered{0};
  std::atomic<bool> release_all{false};
  std::atomic<bool> all_granted{true};
  std::vector<std::thread> holders;
  for (std::size_t t = 0; t < kHolders; ++t) {
    holders.emplace_back([&] {
      bool retracted = false;
      ReaderIndicator::GrantSlot* g =
          ind.try_enter(ResourceSet(2, {0}), &retracted);
      if (g == nullptr) {
        all_granted.store(false, std::memory_order_relaxed);
        entered.fetch_add(1, std::memory_order_release);
        return;
      }
      entered.fetch_add(1, std::memory_order_release);
      while (!release_all.load(std::memory_order_acquire))
        std::this_thread::yield();
      ind.exit(g);
    });
  }
  while (entered.load(std::memory_order_acquire) < kHolders)
    std::this_thread::yield();
  ASSERT_TRUE(all_granted.load());       // 64 slots, no writer: all admit
  EXPECT_EQ(ind.published_total(), kHolders);  // 17 readers...
  const std::uint64_t root = ind.root_surplus(0);
  EXPECT_GE(root, 1u);                   // ...on at least one stripe...
  EXPECT_LE(root, 8u);                   // ...but at most kStripes of them:
  EXPECT_LT(root, kHolders);             // some arrive piggybacked.
  EXPECT_EQ(ind.root_surplus(1), 0u);
  release_all.store(true, std::memory_order_release);
  for (auto& t : holders) t.join();
  EXPECT_EQ(ind.published_total(), 0u);
  EXPECT_EQ(ind.root_surplus(0), 0u);
  EXPECT_EQ(ind.root_total(), 0u);
}

// Sweep cost is the tentpole claim: one root word per domain resource,
// independent of the stripe count and of how many readers are published
// elsewhere.
TEST(SnziTree, SweepReadsOneWordPerDomainResource) {
  ReaderIndicator ind(8);
  const ResourceSet guard(8, {1, 4, 6});
  ind.writer_arrive(guard);
  EXPECT_EQ(ind.writer_sweep(guard), 3u);
  ind.writer_depart(guard);
  ResourceSet all(8);
  for (std::size_t l = 0; l < 8; ++l) all.set(l);
  ind.writer_arrive(all);
  EXPECT_EQ(ind.writer_sweep(all), 8u);
  ind.writer_depart(all);
}

// Raw-layer linearizability stress (TSan surface): concurrent arrive/depart
// traffic over shared resources, with a sweeping writer serializing against
// it.  The seq_cst protocol must never let the sweep observe root == 0
// while a completed arrive is still inside, and the census must return to
// exactly zero at quiescence.
TEST(SnziTree, ArriveDepartSweepStress) {
  ReaderIndicator ind(4);
  constexpr int kIters = 2000;
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      bool retracted = false;
      for (int k = 0; k < kIters; ++k) {
        ResourceSet reads(4, {static_cast<std::size_t>(t + k) % 4});
        reads.set(static_cast<std::size_t>(t + 3 * k + 1) % 4);
        if (ReaderIndicator::GrantSlot* g = ind.try_enter(reads, &retracted))
          ind.exit(g);
      }
    });
  }
  std::thread sweeper([&] {
    const ResourceSet guard(4, {0, 2});
    while (!stop.load(std::memory_order_acquire)) {
      ind.writer_arrive(guard);
      ind.writer_sweep(guard);
      // Writer present + sweep returned: both guarded roots are drained,
      // and new publishes decline, so the surplus stays zero except for
      // transient publish-then-retract windows — which never complete an
      // arrive.  The strong assert has to wait for quiescence below; here
      // we only exercise the race under TSan.
      ind.writer_depart(guard);
      std::this_thread::yield();
    }
  });
  for (auto& t : readers) t.join();
  stop.store(true, std::memory_order_release);
  sweeper.join();
  EXPECT_EQ(ind.published_total(), 0u);
  EXPECT_EQ(ind.root_total(), 0u);
}

// ------------------------------------------------------------ spin lock ----

TEST(IndicatorSpin, FastGrantBypassesEngineAndCounts) {
  SpinRwRnlp lock(4);
  lock.enable_reader_indicator();
  EXPECT_TRUE(lock.reader_indicator_enabled());
  const LockToken tok = lock.acquire(ResourceSet(4, {0, 1}), ResourceSet(4));
  EXPECT_TRUE(is_indicator_token_id(tok.id));
  // Production grants are engine-invisible: exclusion is enforced at the
  // indicator layer, not by engine queues.
  EXPECT_EQ(lock.engine_for_test().incomplete_count(), 0u);
  lock.release(tok);
  const HealthReport hr = lock.health_report();
  EXPECT_EQ(hr.indicator_fast_hits, 1u);
  EXPECT_EQ(hr.acquired, 1u);
}

TEST(IndicatorSpin, WriterSweepCountsAndReadFallsBack) {
  SpinRwRnlp lock(4);
  lock.enable_reader_indicator();
  const LockToken w = lock.acquire(ResourceSet(4), ResourceSet(4, {2}));
  EXPECT_FALSE(is_indicator_token_id(w.id));
  // Reader overlapping the writer's guard domain: declined at the pre-check
  // (writer present), served through the classic engine path instead.
  const LockToken r = lock.acquire(ResourceSet(4, {3}), ResourceSet(4));
  EXPECT_TRUE(is_indicator_token_id(r.id));  // disjoint resource: still fast
  lock.release(r);
  lock.release(w);
  const HealthReport hr = lock.health_report();
  EXPECT_GE(hr.indicator_sweeps, 1u);
  // After the writer departs, the same footprint is fast again.
  const LockToken r2 = lock.acquire(ResourceSet(4, {2}), ResourceSet(4));
  EXPECT_TRUE(is_indicator_token_id(r2.id));
  lock.release(r2);
}

TEST(IndicatorSpin, TimedWriterDepartsOnTimeout) {
  SpinRwRnlp lock(2);
  lock.enable_reader_indicator();
  std::atomic<bool> holder_ready{false};
  std::atomic<bool> timed_done{false};
  std::thread holder([&] {
    const LockToken tok = lock.acquire(ResourceSet(2), ResourceSet(2, {0}));
    holder_ready.store(true, std::memory_order_release);
    while (!timed_done.load(std::memory_order_acquire))
      std::this_thread::yield();
    lock.release(tok);
  });
  while (!holder_ready.load(std::memory_order_acquire))
    std::this_thread::yield();
  // Timed writer against the held resource, deadline already expired: the
  // request is withdrawn and — critically — its writer-present mark must be
  // withdrawn with it.
  const auto expired = std::chrono::steady_clock::now() - 1ms;
  EXPECT_FALSE(
      lock.try_lock_until(ResourceSet(2), ResourceSet(2, {0}), expired)
          .has_value());
  timed_done.store(true, std::memory_order_release);
  holder.join();
  // Both writers gone: the fast path must work again.
  const LockToken r = lock.acquire(ResourceSet(2, {0}), ResourceSet(2));
  EXPECT_TRUE(is_indicator_token_id(r.id));
  lock.release(r);
}

TEST(IndicatorSpin, UpgradeableQuartetGuards) {
  SpinRwRnlp lock(2);
  lock.enable_reader_indicator();
  // abandon() path.
  SpinRwRnlp::UpgradeToken u1 =
      lock.acquire_upgradeable(ResourceSet(2, {0}));
  if (u1.write_mode) {
    lock.release_upgraded(u1);
  } else {
    lock.abandon(u1);
  }
  // upgrade() + release_upgraded() path.
  SpinRwRnlp::UpgradeToken u2 =
      lock.acquire_upgradeable(ResourceSet(2, {0}));
  if (!u2.write_mode) lock.upgrade(u2);
  lock.release_upgraded(u2);
  // The guard departed both times: read fast path must succeed.
  const LockToken r = lock.acquire(ResourceSet(2, {0}), ResourceSet(2));
  EXPECT_TRUE(is_indicator_token_id(r.id));
  lock.release(r);
  EXPECT_GE(lock.health_report().indicator_sweeps, 2u);
}

// Seqlock-style exclusion invariant under reader/writer pressure: every
// writer makes its per-resource counter odd for the critical section, and a
// reader observing an odd counter on a resource it read-holds proves a
// writer ran inside a reader's critical section.  This is the primary TSan
// stress surface for the publish/re-check vs arrive/sweep race.
template <typename Lock>
void run_exclusion_stress(Lock& lock, std::size_t q, int iters,
                          int num_readers, int num_writers) {
  std::vector<std::atomic<std::uint64_t>> seq(q);
  for (auto& s : seq) s.store(0);
  std::atomic<bool> violation{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < num_readers; ++t) {
    threads.emplace_back([&, t] {
      for (int k = 0; k < iters; ++k) {
        const std::size_t a = static_cast<std::size_t>(t + k) % q;
        const std::size_t b = static_cast<std::size_t>(t + 3 * k + 1) % q;
        ResourceSet reads(q, {a});
        reads.set(b);
        const LockToken tok = lock.acquire(reads, ResourceSet(q));
        if ((seq[a].load(std::memory_order_relaxed) & 1) != 0 ||
            (seq[b].load(std::memory_order_relaxed) & 1) != 0)
          violation.store(true, std::memory_order_relaxed);
        lock.release(tok);
      }
    });
  }
  for (int t = 0; t < num_writers; ++t) {
    threads.emplace_back([&, t] {
      for (int k = 0; k < iters; ++k) {
        const std::size_t w = static_cast<std::size_t>(5 * t + 7 * k) % q;
        const LockToken tok =
            lock.acquire(ResourceSet(q), ResourceSet(q, {w}));
        seq[w].fetch_add(1, std::memory_order_relaxed);  // now odd
        seq[w].fetch_add(1, std::memory_order_relaxed);  // even again
        lock.release(tok);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(violation.load()) << "writer ran inside a reader's section";
}

TEST(IndicatorSpin, ExclusionStress) {
  SpinRwRnlp lock(4);
  lock.enable_reader_indicator();
  run_exclusion_stress(lock, 4, 400, 3, 2);
  const HealthReport hr = lock.health_report();
  EXPECT_GT(hr.indicator_sweeps, 0u);
  EXPECT_EQ(lock.engine_for_test().incomplete_count(), 0u);
}

TEST(IndicatorSpin, ExclusionStressWithCombining) {
  SpinRwRnlp lock(4, rsm::WriteExpansion::ExpandDomain,
                  /*reads_as_writes=*/false, /*combining=*/true);
  lock.enable_reader_indicator();
  run_exclusion_stress(lock, 4, 400, 3, 2);
  EXPECT_EQ(lock.engine_for_test().incomplete_count(), 0u);
}

TEST(IndicatorSpin, ReadOnlyPhaseIsAllFastHits) {
  SpinRwRnlp lock(4);
  lock.enable_reader_indicator();
  constexpr int kIters = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int k = 0; k < kIters; ++k) {
        const LockToken tok = lock.acquire(
            ResourceSet(4, {static_cast<std::size_t>(t + k) % 4}),
            ResourceSet(4));
        lock.release(tok);
      }
    });
  }
  for (auto& t : threads) t.join();
  // No writer ever arrived: every single acquisition must have taken the
  // mutex-free path (modulo grant-slot exhaustion, impossible at 4 threads).
  const HealthReport hr = lock.health_report();
  EXPECT_EQ(hr.indicator_fast_hits, 4u * kIters);
  EXPECT_EQ(hr.indicator_retractions, 0u);
  EXPECT_EQ(hr.indicator_sweeps, 0u);
}

// --------------------------------------------------------- suspend lock ----

TEST(IndicatorSuspend, FastGrantAndCounters) {
  SuspendRwRnlp lock(4);
  lock.enable_reader_indicator();
  const LockToken tok = lock.acquire(ResourceSet(4, {1}), ResourceSet(4));
  EXPECT_TRUE(is_indicator_token_id(tok.id));
  lock.release(tok);
  const HealthReport hr = lock.health_report();
  EXPECT_EQ(hr.indicator_fast_hits, 1u);
  EXPECT_EQ(hr.acquired, 1u);
  EXPECT_EQ(lock.pending_satisfied_count(), 0u);
}

TEST(IndicatorSuspend, ExclusionStress) {
  SuspendRwRnlp lock(4);
  lock.enable_reader_indicator();
  run_exclusion_stress(lock, 4, 300, 3, 2);
  EXPECT_EQ(lock.engine_for_test().incomplete_count(), 0u);
  EXPECT_EQ(lock.blocked_waiters(), 0u);
}

// --------------------------------------------------------- sharded lock ----

TEST(IndicatorSharded, CrossShardCombiningStress) {
  ShardedRwRnlp lock(4, {ResourceSet(4, {0, 1}), ResourceSet(4, {2, 3})});
  lock.enable_reader_indicators();
  lock.enable_cross_shard_combining();
  EXPECT_TRUE(lock.reader_indicators_enabled());
  EXPECT_TRUE(lock.cross_shard_combining_enabled());

  std::vector<std::atomic<std::uint64_t>> seq(4);
  for (auto& s : seq) s.store(0);
  std::atomic<bool> violation{false};
  constexpr int kIters = 400;
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&, t] {
      for (int k = 0; k < kIters; ++k) {
        // Stay inside one component per request (routing requirement):
        // component = (t + k) % 2, resources {2c, 2c+1}.
        const std::size_t c = static_cast<std::size_t>(t + k) % 2;
        const std::size_t l0 = 2 * c, l1 = 2 * c + 1;
        if ((t + k) % 3 == 0) {  // writer
          const LockToken tok =
              lock.acquire(ResourceSet(4), ResourceSet(4, {l0}));
          seq[l0].fetch_add(1, std::memory_order_relaxed);
          seq[l0].fetch_add(1, std::memory_order_relaxed);
          lock.release(tok);
        } else {  // reader over both component resources
          ResourceSet reads(4, {l0});
          reads.set(l1);
          const LockToken tok = lock.acquire(reads, ResourceSet(4));
          if ((seq[l0].load(std::memory_order_relaxed) & 1) != 0 ||
              (seq[l1].load(std::memory_order_relaxed) & 1) != 0)
            violation.store(true, std::memory_order_relaxed);
          lock.release(tok);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(violation.load()) << "cross-shard exclusion violated";
  for (std::size_t c = 0; c < lock.num_components(); ++c)
    EXPECT_EQ(lock.shard(c).engine_for_test().incomplete_count(), 0u);
  const HealthReport hr = lock.health_report();
  EXPECT_GT(hr.indicator_fast_hits, 0u);
  EXPECT_GT(hr.indicator_sweeps, 0u);
  // Writers went through the global board: the cross combiner really ran.
  EXPECT_GT(hr.batches_combined, 0u);
  EXPECT_EQ(hr.acquired, 6u * kIters);
}

TEST(IndicatorSharded, IndicatorTokenRoutesThroughOwningShard) {
  ShardedRwRnlp lock(4, {ResourceSet(4, {0, 1}), ResourceSet(4, {2, 3})});
  lock.enable_reader_indicators();
  // Without cross-shard combining: the shard path must not clobber the
  // grant-slot pointer in the token.
  const LockToken r0 = lock.acquire(ResourceSet(4, {0}), ResourceSet(4));
  const LockToken r1 = lock.acquire(ResourceSet(4, {3}), ResourceSet(4));
  EXPECT_TRUE(is_indicator_token_id(r0.id));
  EXPECT_TRUE(is_indicator_token_id(r1.id));
  lock.release(r0);
  lock.release(r1);
  EXPECT_EQ(lock.health_report().indicator_fast_hits, 2u);
}

}  // namespace
}  // namespace rwrnlp::locks
