// Byte-equal oracle replay of flat-combined runs.
//
// The combining broker batches invocations, but the invocation log a
// combined front end records must still describe a legal *sequential*
// protocol history: replaying it through a fresh validating engine has to
// reproduce the live engine's trace byte-for-byte, with every E-property
// and delay cap intact (testing/oracle.hpp).  These tests run identical
// random workloads through a combined and an uncombined lock and push both
// logs through verify_replay — the combined front end earns exactly the
// same certificate as the classic one.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <random>
#include <thread>
#include <vector>

#include "locks/invocation_log.hpp"
#include "locks/spin_rw_rnlp.hpp"
#include "locks/suspend_rw_rnlp.hpp"
#include "support/harness.hpp"
#include "testing/oracle.hpp"

namespace rwrnlp::locks {
namespace {

using namespace std::chrono_literals;
using support::expect_engine_drained;

constexpr std::size_t kResources = 4;
constexpr std::size_t kThreads = 4;
constexpr int kIters = 60;

// The shared mixed workload with this suite's historical shape: coin over
// [0, 6), every op drawing the timed coin.
template <typename Lock>
void run_workload(Lock& lock, unsigned seed_base) {
  support::MixedWorkloadOptions o;
  o.resources = kResources;
  o.threads = kThreads;
  o.iters = kIters;
  support::run_mixed_timed_workload(lock, seed_base, o);
}

testing::OracleOptions oracle_options() {
  testing::OracleOptions oo;
  oo.num_threads = kThreads;
  oo.ops_per_thread = kIters;
  return oo;
}

void run_spin_replay(bool combining, unsigned seed) {
  SpinRwRnlp lock(kResources, rsm::WriteExpansion::ExpandDomain,
                  /*reads_as_writes=*/false, combining);
  InvocationLog log;
  lock.engine_for_test().set_trace_recording(true);
  lock.set_invocation_log(&log);
  run_workload(lock, seed);
  EXPECT_EQ(lock.combining_enabled(), combining);
  expect_engine_drained(lock.engine_for_test(), kResources);
  testing::verify_replay(lock.engine_for_test(), log, oracle_options());
}

// Control: the same workload through the classic (uncombined) front end.
TEST(CombiningReplay, SpinUncombinedControlReplays) {
  run_spin_replay(/*combining=*/false, 0xC0DE);
}

TEST(CombiningReplay, SpinCombinedReplays) {
  run_spin_replay(/*combining=*/true, 0xC0DE);
}

TEST(CombiningReplay, SpinCombinedPlaceholdersReplay) {
  SpinRwRnlp lock(kResources, rsm::WriteExpansion::Placeholders,
                  /*reads_as_writes=*/false, /*combining=*/true);
  InvocationLog log;
  lock.engine_for_test().set_trace_recording(true);
  lock.set_invocation_log(&log);
  run_workload(lock, 0xFACE);
  expect_engine_drained(lock.engine_for_test(), kResources);
  testing::verify_replay(lock.engine_for_test(), log, oracle_options());
}

// Fast path off: every invocation (reads included) goes through the broker,
// so the replay certifies the pure apply_batch pipeline.
TEST(CombiningReplay, SpinCombinedNoFastPathReplay) {
  SpinRwRnlp lock(kResources, rsm::WriteExpansion::ExpandDomain,
                  /*reads_as_writes=*/false, /*combining=*/true);
  lock.set_read_fast_path(false);
  InvocationLog log;
  lock.engine_for_test().set_trace_recording(true);
  lock.set_invocation_log(&log);
  run_workload(lock, 0xBEAD);
  expect_engine_drained(lock.engine_for_test(), kResources);
  testing::verify_replay(lock.engine_for_test(), log, oracle_options());
}

TEST(CombiningReplay, SuspendCombinedReplay) {
  SuspendRwRnlp lock(kResources, rsm::WriteExpansion::ExpandDomain,
                     /*combining=*/true);
  InvocationLog log;
  lock.engine_for_test().set_trace_recording(true);
  lock.set_invocation_log(&log);
  run_workload(lock, 0xF00D);
  EXPECT_EQ(lock.blocked_waiters(), 0u);
  expect_engine_drained(lock.engine_for_test(), kResources);
  testing::verify_replay(lock.engine_for_test(), log, oracle_options());
}

}  // namespace
}  // namespace rwrnlp::locks
