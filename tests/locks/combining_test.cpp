// Flat-combining front-end tests (real threads, no virtual scheduler):
// mutual-exclusion census stress on all three combined front ends, the
// load-shedding gate on the combined path, and the combiner observability
// counters surfaced through HealthReport.  The byte-equal oracle replay of
// combined runs lives in combining_replay_test.cpp (it needs the
// schedule-testing library); the engine-level batch semantics live in
// tests/rsm/batch_equivalence_test.cpp.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "locks/sharded_rw_rnlp.hpp"
#include "locks/spin_rw_rnlp.hpp"
#include "locks/suspend_rw_rnlp.hpp"
#include "support/harness.hpp"
#include "util/rng.hpp"

namespace rwrnlp::locks {
namespace {

using support::expect_census_clean;
using support::random_set;
using support::SharedState;
using support::worker;

constexpr std::size_t kQ = 8;

TEST(CombiningSpinStress, MixedReadersWriters) {
  SpinRwRnlp lock(kQ, rsm::WriteExpansion::ExpandDomain,
                  /*reads_as_writes=*/false, /*combining=*/true);
  ASSERT_TRUE(lock.combining_enabled());
  SharedState st(kQ);
  std::vector<std::thread> pool;
  for (int i = 0; i < 6; ++i)
    pool.emplace_back([&, i] {
      worker(lock, st, 4000 + static_cast<std::uint64_t>(i), 0, kQ, 800);
    });
  for (auto& t : pool) t.join();
  expect_census_clean(st);
  const HealthReport hr = lock.health_report();
  EXPECT_EQ(hr.incomplete, 0u);
  EXPECT_GT(hr.batches_combined, 0u);
  EXPECT_GT(hr.combined_invocations, 0u);
  EXPECT_GE(hr.combined_invocations, hr.batches_combined);
  EXPECT_GE(hr.max_batch_combined, 1u);
}

// Same census under the Placeholders expansion mode and with the read fast
// path disabled, so every single invocation funnels through the broker.
TEST(CombiningSpinStress, AllTrafficThroughBroker) {
  SpinRwRnlp lock(kQ, rsm::WriteExpansion::Placeholders,
                  /*reads_as_writes=*/false, /*combining=*/true);
  lock.set_read_fast_path(false);
  SharedState st(kQ);
  std::vector<std::thread> pool;
  for (int i = 0; i < 4; ++i)
    pool.emplace_back([&, i] {
      worker(lock, st, 5000 + static_cast<std::uint64_t>(i), 0, kQ, 600);
    });
  for (auto& t : pool) t.join();
  expect_census_clean(st);
  const HealthReport hr = lock.health_report();
  // acquire + release per op, all via apply_batch.
  EXPECT_EQ(hr.combined_invocations, 2 * hr.acquired);
}

TEST(CombiningSuspendStress, MixedReadersWriters) {
  SuspendRwRnlp lock(kQ, rsm::WriteExpansion::ExpandDomain,
                     /*combining=*/true);
  ASSERT_TRUE(lock.combining_enabled());
  SharedState st(kQ);
  std::vector<std::thread> pool;
  for (int i = 0; i < 6; ++i)
    pool.emplace_back([&, i] {
      worker(lock, st, 6000 + static_cast<std::uint64_t>(i), 0, kQ, 500);
    });
  for (auto& t : pool) t.join();
  expect_census_clean(st);
  EXPECT_EQ(lock.blocked_waiters(), 0u);
  EXPECT_EQ(lock.pending_satisfied_count(), 0u);
  const HealthReport hr = lock.health_report();
  EXPECT_EQ(hr.incomplete, 0u);
  EXPECT_GT(hr.batches_combined, 0u);
  EXPECT_GT(hr.combined_invocations, 0u);
}

TEST(CombiningShardedStress, PerComponentWorkers) {
  ResourceSet lo(kQ), hi(kQ);
  for (ResourceId l = 0; l < 4; ++l) lo.set(l);
  for (ResourceId l = 4; l < 8; ++l) hi.set(l);
  ShardedRwRnlp lock(kQ, {lo, hi}, rsm::WriteExpansion::ExpandDomain,
                     /*combining=*/true);
  ASSERT_TRUE(lock.combining_enabled());
  SharedState st(kQ);
  std::vector<std::thread> pool;
  for (int i = 0; i < 4; ++i) {
    const ResourceId base = (i % 2 == 0) ? 0 : 4;
    pool.emplace_back([&, i, base] {
      worker(lock, st, 7000 + static_cast<std::uint64_t>(i), base, 4, 600);
    });
  }
  for (auto& t : pool) t.join();
  expect_census_clean(st);
  const HealthReport hr = lock.health_report();
  EXPECT_EQ(hr.incomplete, 0u);
  EXPECT_GT(hr.batches_combined, 0u);  // merged across shards
}

// Load shedding must gate the combined path exactly like the classic one:
// the sink vetoes the publication (no engine state is touched) and the
// publisher's acquire throws OverloadShed.
TEST(CombiningOverloadShed, CombinedIssueSheds) {
  SpinRwRnlp lock(kQ, rsm::WriteExpansion::ExpandDomain,
                  /*reads_as_writes=*/false, /*combining=*/true);
  RobustnessOptions opt;
  opt.max_incomplete = 1;
  lock.set_robustness_options(opt);
  const LockToken held = lock.acquire(ResourceSet(kQ), ResourceSet(kQ, {0}));
  EXPECT_THROW(lock.acquire(ResourceSet(kQ), ResourceSet(kQ, {1})),
               OverloadShed);
  const HealthReport during = lock.health_report();
  EXPECT_EQ(during.shed, 1u);
  EXPECT_EQ(during.incomplete, 1u);  // the vetoed request never issued
  lock.release(held);
  const LockToken again = lock.acquire(ResourceSet(kQ), ResourceSet(kQ, {1}));
  lock.release(again);
}

// The suspension variant's combined path sheds the same way.
TEST(CombiningOverloadShed, SuspendCombinedIssueSheds) {
  SuspendRwRnlp lock(kQ, rsm::WriteExpansion::ExpandDomain,
                     /*combining=*/true);
  RobustnessOptions opt;
  opt.max_incomplete = 1;
  lock.set_robustness_options(opt);
  const LockToken held = lock.acquire(ResourceSet(kQ), ResourceSet(kQ, {0}));
  EXPECT_THROW(lock.acquire(ResourceSet(kQ), ResourceSet(kQ, {1})),
               OverloadShed);
  lock.release(held);
  const LockToken again = lock.acquire(ResourceSet(kQ), ResourceSet(kQ, {1}));
  lock.release(again);
}

// Single-threaded smoke: with nobody to combine with, every submit is a
// batch of one applied by its own publisher, and results flow back through
// the slot (satisfied-at-issue, ids, waiter flag untouched).
TEST(CombiningBroker, SelfCombiningSingleThread) {
  SpinRwRnlp lock(kQ, rsm::WriteExpansion::ExpandDomain,
                  /*reads_as_writes=*/false, /*combining=*/true);
  lock.set_read_fast_path(false);  // keep reads on the broker too
  for (int i = 0; i < 100; ++i) {
    const LockToken r =
        lock.acquire(ResourceSet(kQ, {0, 1}), ResourceSet(kQ));
    lock.release(r);
    const LockToken w =
        lock.acquire(ResourceSet(kQ), ResourceSet(kQ, {1, 2}));
    lock.release(w);
  }
  const HealthReport hr = lock.health_report();
  EXPECT_EQ(hr.acquired, 200u);
  EXPECT_EQ(hr.combined_invocations, 400u);  // 200 issues + 200 completes
  EXPECT_EQ(hr.incomplete, 0u);
  EXPECT_EQ(hr.max_batch_combined, 1u);
  EXPECT_EQ(hr.combiner_handoffs, 0u);
}

// reads_as_writes (the mutex-RNLP baseline) through the combined path:
// reads must contend like writes.
TEST(CombiningBroker, ReadsAsWritesCombine) {
  SpinRwRnlp lock(kQ, rsm::WriteExpansion::ExpandDomain,
                  /*reads_as_writes=*/true, /*combining=*/true);
  SharedState st(kQ);
  std::vector<std::thread> pool;
  for (int i = 0; i < 4; ++i)
    pool.emplace_back([&, i] {
      Rng rng(8000 + static_cast<std::uint64_t>(i));
      for (int k = 0; k < 400; ++k) {
        const ResourceSet rs = random_set(rng, kQ, 0, kQ, 2);
        // Issued as a read, but the baseline treats it as a write: the
        // census may therefore demand writer-exclusivity.
        LockToken t = lock.acquire(rs, ResourceSet(kQ));
        st.enter_write(rs);
        st.exit_write(rs);
        lock.release(t);
      }
    });
  for (auto& t : pool) t.join();
  expect_census_clean(st);
}

}  // namespace
}  // namespace rwrnlp::locks
