// Byte-equal oracle replay and schedule exploration of the optimistic
// mutex-free writer admission (DESIGN.md §14).
//
// With an invocation log installed, every optimistic admission lands as an
// IssueWriteFast record in the sequential history; replaying it through a
// fresh validating engine must reproduce the live trace byte-for-byte, and
// every IssueWriteFast must satisfy the engine's closure-idle precondition
// at its point in the history — the Rule-W equivalence claim: the epoch and
// summary-word validation can admit a writer only into a domain the
// authoritative engine state agrees is quiescent.
//
// The explorer scenarios enumerate every interleaving of a reader (both the
// indicator-published and the classic-engine kind) against the optimistic
// writer, so a publish or engine invocation lands at each of the
// WriteFastValidate / WriteFastClaim / WriteFastRecheck yield points; both
// the hit and the miss outcome must be reached and every schedule must
// replay with the E-properties intact.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "locks/invocation_log.hpp"
#include "locks/sharded_rw_rnlp.hpp"
#include "locks/spin_rw_rnlp.hpp"
#include "locks/suspend_rw_rnlp.hpp"
#include "support/harness.hpp"
#include "testing/explore.hpp"
#include "testing/oracle.hpp"

namespace rwrnlp::locks {
namespace {

using namespace std::chrono_literals;
using support::expect_engine_drained;

constexpr std::size_t kResources = 4;
constexpr std::size_t kThreads = 4;
constexpr int kIters = 60;

/// Write-heavy shape of the shared mixed workload: most requests carry a
/// write (fast-path candidates), with enough reads that the summary words
/// go nonzero and the optimistic path actually misses sometimes.
template <typename Lock>
void run_workload(Lock& lock, unsigned seed_base) {
  support::MixedWorkloadOptions o;
  o.resources = kResources;
  o.threads = kThreads;
  o.iters = kIters;
  o.coin_sides = 8;
  o.read_below = 2;
  o.write_below = 6;
  support::run_mixed_timed_workload(lock, seed_base, o);
}

testing::OracleOptions oracle_options() {
  testing::OracleOptions oo;
  oo.num_threads = kThreads;
  oo.ops_per_thread = kIters;
  return oo;
}

TEST(WriteFastReplay, SpinWriteFastReplaysByteEqual) {
  SpinRwRnlp lock(kResources);
  lock.set_write_fast_path(true);
  InvocationLog log;
  lock.engine_for_test().set_trace_recording(true);
  lock.set_invocation_log(&log);
  run_workload(lock, 0xFA57);
  expect_engine_drained(lock.engine_for_test(), kResources);
  // The optimistic path really carried traffic in this run, and its
  // records are present in the history.
  EXPECT_GT(lock.health_report().write_fast_hits, 0u);
  std::size_t fast_records = 0;
  for (const InvocationRecord& rec : log)
    if (rec.kind == InvocationKind::IssueWriteFast) ++fast_records;
  EXPECT_EQ(fast_records, lock.health_report().write_fast_hits);
  testing::verify_replay(lock.engine_for_test(), log, oracle_options());
}

TEST(WriteFastReplay, SpinWriteFastWithIndicatorReplays) {
  SpinRwRnlp lock(kResources);
  lock.enable_reader_indicator();
  lock.set_write_fast_path(true);
  InvocationLog log;
  lock.engine_for_test().set_trace_recording(true);
  lock.set_invocation_log(&log);
  run_workload(lock, 0xB1D5);
  expect_engine_drained(lock.engine_for_test(), kResources);
  testing::verify_replay(lock.engine_for_test(), log, oracle_options());
}

TEST(WriteFastReplay, SpinWriteFastPlaceholdersReplay) {
  SpinRwRnlp lock(kResources, rsm::WriteExpansion::Placeholders);
  lock.set_write_fast_path(true);
  InvocationLog log;
  lock.engine_for_test().set_trace_recording(true);
  lock.set_invocation_log(&log);
  run_workload(lock, 0xAB1E);
  expect_engine_drained(lock.engine_for_test(), kResources);
  testing::verify_replay(lock.engine_for_test(), log, oracle_options());
}

TEST(WriteFastReplay, SuspendWriteFastReplays) {
  SuspendRwRnlp lock(kResources);
  lock.set_write_fast_path(true);
  InvocationLog log;
  lock.engine_for_test().set_trace_recording(true);
  lock.set_invocation_log(&log);
  run_workload(lock, 0x5AFE);
  EXPECT_EQ(lock.blocked_waiters(), 0u);
  expect_engine_drained(lock.engine_for_test(), kResources);
  testing::verify_replay(lock.engine_for_test(), log, oracle_options());
}

// Control: identical workload and seed through the classic front end — the
// optimistic admission changes the concurrency structure, never the
// protocol history's legality.
TEST(WriteFastReplay, ClassicControlReplays) {
  SpinRwRnlp lock(kResources);
  InvocationLog log;
  lock.engine_for_test().set_trace_recording(true);
  lock.set_invocation_log(&log);
  run_workload(lock, 0xFA57);
  expect_engine_drained(lock.engine_for_test(), kResources);
  testing::verify_replay(lock.engine_for_test(), log, oracle_options());
}

// ----------------------- amortized cross-shard sweep, replay-certified ----

/// Cross-shard workload for the sharded replay pair: indicator readers and
/// cross-combined writers over both components, footprints always inside
/// one component (routing requirement).
void run_sharded_workload(ShardedRwRnlp& lock) {
  constexpr int kShardedIters = 120;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int k = 0; k < kShardedIters; ++k) {
        const std::size_t c = (t + static_cast<std::size_t>(k)) % 2;
        const std::size_t l0 = 2 * c, l1 = 2 * c + 1;
        if ((t + static_cast<std::size_t>(k)) % 3 == 0) {
          const LockToken tok =
              lock.acquire(ResourceSet(4), ResourceSet(4, {l0}));
          lock.release(tok);
        } else {
          ResourceSet reads(4, {l0});
          reads.set(l1);
          const LockToken tok = lock.acquire(reads, ResourceSet(4));
          lock.release(tok);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
}

/// The amortized-vs-per-writer pair: the same workload shape with the
/// cross-shard combiner on (one deduplicated union sweep per tag run) and
/// off (one sweep per writer at guard entry).  Both runs must earn the same
/// per-shard byte-equal replay certificate — the amortization changes how
/// often the indicator is swept, never which histories are legal.
void run_sharded_replay(bool cross_combining) {
  ShardedRwRnlp lock(4, {ResourceSet(4, {0, 1}), ResourceSet(4, {2, 3})});
  lock.enable_reader_indicators();
  if (cross_combining) lock.enable_cross_shard_combining();
  InvocationLog logs[2];
  for (std::size_t c = 0; c < 2; ++c) {
    lock.shard(c).engine_for_test().set_trace_recording(true);
    lock.shard(c).set_invocation_log(&logs[c]);
  }
  run_sharded_workload(lock);
  const HealthReport hr = lock.health_report();
  EXPECT_GT(hr.indicator_sweeps, 0u);
  EXPECT_GT(hr.writer_sweeps, 0u);
  // Executed sweep passes never exceed per-writer guard entries; without
  // batching they match exactly.
  EXPECT_LE(hr.writer_sweeps, hr.indicator_sweeps);
  if (!cross_combining) EXPECT_EQ(hr.writer_sweeps, hr.indicator_sweeps);
  testing::OracleOptions oo;
  oo.num_threads = kThreads;
  oo.ops_per_thread = 120;
  for (std::size_t c = 0; c < 2; ++c) {
    expect_engine_drained(lock.shard(c).engine_for_test(), 4);
    testing::verify_replay(lock.shard(c).engine_for_test(), logs[c], oo);
  }
}

TEST(WriteFastReplay, ShardedPerWriterSweepControlReplays) {
  run_sharded_replay(/*cross_combining=*/false);
}

TEST(WriteFastReplay, ShardedAmortizedSweepReplays) {
  run_sharded_replay(/*cross_combining=*/true);
}

// ------------------------------------------------ schedule exploration ----

/// Exhaustive enumeration of one optimistic writer against one reader.
/// The reader lands at every yield point of the writer's validate window
/// (WriteFastValidate / WriteFastClaim / WriteFastRecheck), forcing every
/// outcome: summary validation fails, the mutex claim fails, the epoch
/// re-check fails, or the admission goes through.  Every schedule must
/// replay byte-identically with zero E-property violations.
void explore_writer_reader(bool indicator_reader) {
  auto hits = std::make_shared<std::atomic<std::uint64_t>>(0);
  auto misses = std::make_shared<std::atomic<std::uint64_t>>(0);
  const testing::ScenarioFactory factory = [hits, misses, indicator_reader] {
    struct State {
      SpinRwRnlp lock{2};
      InvocationLog log;
    };
    auto st = std::make_shared<State>();
    if (indicator_reader) st->lock.enable_reader_indicator();
    st->lock.set_write_fast_path(true);
    st->lock.engine_for_test().set_trace_recording(true);
    st->lock.set_invocation_log(&st->log);
    testing::ScenarioRun run;
    run.bodies.push_back([st] {  // A: optimistic writer on l0
      const LockToken tok =
          st->lock.acquire(ResourceSet(2), ResourceSet(2, {0}));
      st->lock.release(tok);
    });
    run.bodies.push_back([st] {  // B: reader over {l0, l1}
      const LockToken tok =
          st->lock.acquire(ResourceSet(2, {0, 1}), ResourceSet(2));
      st->lock.release(tok);
    });
    testing::OracleOptions oo;
    oo.num_threads = 2;
    oo.ops_per_thread = 1;
    run.check = [st, oo, hits, misses] {
      testing::verify_replay(st->lock.engine_for_test(), st->log, oo);
      const HealthReport hr = st->lock.health_report();
      hits->fetch_add(hr.write_fast_hits);
      misses->fetch_add(hr.write_fast_misses);
      if (st->lock.engine_for_test().incomplete_count() != 0)
        throw std::logic_error("engine not drained after the schedule");
      if (st->lock.pending_satisfied_count() != 0)
        throw std::logic_error("pending satisfaction leaked");
    };
    return run;
  };
  testing::ExhaustiveStrategy strategy;
  testing::ExploreOptions opt;
  opt.max_schedules = 400000;
  const testing::ExploreResult res = testing::explore(factory, strategy, opt);
  EXPECT_FALSE(res.failure_found) << res.failure << " (token " << res.token
                                  << ")";
  EXPECT_TRUE(res.exhausted) << "state space not fully enumerated";
  EXPECT_GT(res.schedules, 10u);
  // Both outcomes of the validate window were explored: schedules where
  // the writer admitted optimistically and schedules where the reader's
  // occupancy (summary word, mutex, or epoch) forced the classic fallback.
  EXPECT_GT(hits->load(), 0u);
  EXPECT_GT(misses->load(), 0u);
}

TEST(ExplorerWriteFast, ExhaustiveClassicReaderValidateWindow) {
  explore_writer_reader(/*indicator_reader=*/false);
}

TEST(ExplorerWriteFast, ExhaustiveIndicatorReaderValidateWindow) {
  explore_writer_reader(/*indicator_reader=*/true);
}

/// Two optimistic writers racing for the same domain: exactly one can win
/// the claim per admission, misses must fall back classically, and every
/// schedule replays.  Preemption-bounded to keep the space tractable with
/// the third (reader) thread present.
TEST(ExplorerWriteFast, PreemptionBoundedWriterPairWithReader) {
  auto hits = std::make_shared<std::atomic<std::uint64_t>>(0);
  const testing::ScenarioFactory factory = [hits] {
    struct State {
      SpinRwRnlp lock{2};
      InvocationLog log;
    };
    auto st = std::make_shared<State>();
    st->lock.set_write_fast_path(true);
    st->lock.engine_for_test().set_trace_recording(true);
    st->lock.set_invocation_log(&st->log);
    testing::ScenarioRun run;
    for (int w = 0; w < 2; ++w) {
      run.bodies.push_back([st] {
        const LockToken tok =
            st->lock.acquire(ResourceSet(2), ResourceSet(2, {0}));
        st->lock.release(tok);
      });
    }
    run.bodies.push_back([st] {
      const LockToken tok =
          st->lock.acquire(ResourceSet(2, {0}), ResourceSet(2));
      st->lock.release(tok);
    });
    testing::OracleOptions oo;
    oo.num_threads = 3;
    oo.ops_per_thread = 1;
    run.check = [st, oo, hits] {
      testing::verify_replay(st->lock.engine_for_test(), st->log, oo);
      hits->fetch_add(st->lock.health_report().write_fast_hits);
    };
    return run;
  };
  testing::PreemptionBoundedStrategy strategy(1);
  testing::ExploreOptions opt;
  opt.max_schedules = 400000;
  const testing::ExploreResult res = testing::explore(factory, strategy, opt);
  EXPECT_FALSE(res.failure_found) << res.failure << " (token " << res.token
                                  << ")";
  EXPECT_GT(res.schedules, 10u);
  EXPECT_GT(hits->load(), 0u);
}

/// Fault injection: force the engine-side precondition to pass even though
/// the domain is occupied (test_set_force_write_fast) — the detect ->
/// minimize -> replay pipeline must catch the resulting protocol violation
/// in every offending schedule, proving the oracle actually guards the
/// optimistic path rather than rubber-stamping it.
TEST(ExplorerWriteFast, InjectedFastPathOverOccupiedDomainIsCaught) {
  const testing::ScenarioFactory factory = [] {
    struct State {
      SpinRwRnlp lock{2};
      InvocationLog log;
      std::atomic<bool> reader_in{false};
      std::atomic<bool> writer_done{false};
    };
    auto st = std::make_shared<State>();
    st->lock.set_write_fast_path(true);
    st->lock.engine_for_test().set_trace_recording(true);
    st->lock.set_invocation_log(&st->log);
    testing::ScenarioRun run;
    run.bodies.push_back([st] {  // reader holds l0 across the writer's run
      const LockToken tok =
          st->lock.acquire(ResourceSet(2, {0}), ResourceSet(2));
      st->reader_in.store(true, std::memory_order_release);
      sched_wait(YieldPoint::SatisfactionWait, [st] {
        return st->writer_done.load(std::memory_order_acquire);
      });
      st->lock.release(tok);
    });
    run.bodies.push_back([st] {  // writer forced past the precondition
      sched_wait(YieldPoint::SatisfactionWait, [st] {
        return st->reader_in.load(std::memory_order_acquire);
      });
      st->lock.engine_for_test().test_set_force_write_fast(true);
      const LockToken tok =
          st->lock.acquire(ResourceSet(2), ResourceSet(2, {0}));
      st->lock.engine_for_test().test_set_force_write_fast(false);
      st->writer_done.store(true, std::memory_order_release);
      st->lock.release(tok);
    });
    testing::OracleOptions oo;
    oo.num_threads = 2;
    oo.ops_per_thread = 1;
    run.check = [st, oo] {
      testing::verify_replay(st->lock.engine_for_test(), st->log, oo);
    };
    return run;
  };
  testing::ExhaustiveStrategy strategy;
  testing::ExploreOptions opt;
  opt.max_schedules = 400000;
  const testing::ExploreResult res = testing::explore(factory, strategy, opt);
  EXPECT_TRUE(res.failure_found)
      << "forcing the precondition must produce a detectable violation";
  EXPECT_FALSE(res.token.empty());
  // The failing schedule reproduces deterministically.
  EXPECT_FALSE(testing::replay(factory, res.original_token).empty());
}

}  // namespace
}  // namespace rwrnlp::locks
