// Tests for the lock-based STM built on the R/W RNLP.
#include "stm/stm.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "util/rng.hpp"

namespace rwrnlp::stm {
namespace {

TEST(Stm, SingleThreadedReadWrite) {
  StmRuntime rt;
  Var<int> x(rt, 1);
  Var<int> y(rt, 2);
  VarSet rset, wset;
  rset.add(x);
  wset.add(y);
  rt.declare_transaction(rset, wset);

  const int seen = rt.atomically(rset, wset, [&](TxContext& ctx) {
    const int v = ctx.read(x);
    ctx.write(y, v + 10);
    return v;
  });
  EXPECT_EQ(seen, 1);

  VarSet ry;
  ry.add(y);
  const int y_val =
      rt.atomically(ry, VarSet(), [&](TxContext& ctx) { return ctx.read(y); });
  EXPECT_EQ(y_val, 11);
}

TEST(Stm, WriteFootprintIsReadable) {
  StmRuntime rt;
  Var<int> x(rt, 5);
  VarSet wset;
  wset.add(x);
  rt.declare_transaction(VarSet(), wset);
  rt.atomically(VarSet(), wset, [&](TxContext& ctx) {
    ctx.write(x, ctx.read(x) + 1);  // read-modify-write within write set
    return 0;
  });
  VarSet rset;
  rset.add(x);
  EXPECT_EQ(rt.atomically(rset, VarSet(),
                          [&](TxContext& c) { return c.read(x); }),
            6);
}

TEST(Stm, FootprintViolationsAreRejected) {
  StmRuntime rt;
  Var<int> x(rt, 0);
  Var<int> y(rt, 0);
  VarSet rx;
  rx.add(x);
  rt.declare_transaction(rx, VarSet());
  EXPECT_THROW(rt.atomically(rx, VarSet(),
                             [&](TxContext& ctx) { return ctx.read(y); }),
               std::invalid_argument);
  EXPECT_THROW(rt.atomically(rx, VarSet(),
                             [&](TxContext& ctx) {
                               ctx.write(x, 1);  // x is read-only here
                               return 0;
                             }),
               std::invalid_argument);
}

TEST(Stm, DeclarationAfterFreezeRejected) {
  StmRuntime rt;
  Var<int> x(rt, 0);
  VarSet s;
  s.add(x);
  rt.freeze();
  EXPECT_THROW(rt.declare_transaction(s, VarSet()), std::invalid_argument);
  EXPECT_THROW(rt.freeze(), std::invalid_argument);
  EXPECT_THROW(Var<int>(rt, 1), std::invalid_argument);
}

TEST(Stm, VarLimitEnforced) {
  StmRuntime::Options opt;
  opt.max_vars = 2;
  StmRuntime rt(opt);
  Var<int> a(rt, 0), b(rt, 0);
  EXPECT_THROW(Var<int>(rt, 0), std::invalid_argument);
}

TEST(Stm, BankTransfersConserveTotal) {
  // The classic STM litmus: concurrent transfers between accounts plus
  // concurrent read-only balance sweeps; every sweep must observe the
  // invariant total and the final state must conserve it.
  constexpr int kAccounts = 8;
  constexpr int kThreads = 4;
  constexpr int kTransfers = 1200;
  constexpr long kInitial = 1000;

  StmRuntime::Options opt;
  opt.max_vars = kAccounts;
  StmRuntime rt(opt);
  std::vector<std::unique_ptr<Var<long>>> accounts;
  for (int i = 0; i < kAccounts; ++i)
    accounts.push_back(std::make_unique<Var<long>>(rt, kInitial));

  // Declare transaction classes: pairwise transfers and the full sweep.
  VarSet all;
  for (auto& a : accounts) all.add(*a);
  rt.declare_transaction(all, VarSet());  // balance sweep (read everything)
  for (int i = 0; i < kAccounts; ++i) {
    for (int j = 0; j < kAccounts; ++j) {
      if (i == j) continue;
      VarSet pair;
      pair.add(*accounts[i]).add(*accounts[j]);
      rt.declare_transaction(VarSet(), pair);  // transfer writes both
    }
  }
  rt.freeze();

  std::atomic<bool> bad_sweep{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(77 + static_cast<std::uint64_t>(t));
      for (int k = 0; k < kTransfers; ++k) {
        if (rng.chance(0.3)) {
          // Read-only sweep.
          const long total =
              rt.atomically(all, VarSet(), [&](TxContext& ctx) {
                long sum = 0;
                for (auto& a : accounts) sum += ctx.read(*a);
                return sum;
              });
          if (total != kInitial * kAccounts) bad_sweep.store(true);
        } else {
          const std::size_t i = rng.next_below(kAccounts);
          std::size_t j = rng.next_below(kAccounts);
          if (j == i) j = (j + 1) % kAccounts;
          const long amount = static_cast<long>(rng.next_below(50));
          VarSet pair;
          pair.add(*accounts[i]).add(*accounts[j]);
          rt.atomically(VarSet(), pair, [&](TxContext& ctx) {
            ctx.write(*accounts[i], ctx.read(*accounts[i]) - amount);
            ctx.write(*accounts[j], ctx.read(*accounts[j]) + amount);
            return 0;
          });
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(bad_sweep.load());

  const long total = rt.atomically(all, VarSet(), [&](TxContext& ctx) {
    long sum = 0;
    for (auto& a : accounts) sum += ctx.read(*a);
    return sum;
  });
  EXPECT_EQ(total, kInitial * kAccounts);
}

TEST(Stm, UpgradeableSkipsWriteWhenNotNeeded) {
  StmRuntime rt;
  Var<int> x(rt, 5);
  VarSet s;
  s.add(x);
  rt.declare_upgradeable(s);

  const bool wrote = rt.atomically_upgradeable(
      s, [&](const TxContext& ctx) { return ctx.read(x) > 100; },
      [&](TxContext& ctx) { ctx.write(x, 0); });
  EXPECT_FALSE(wrote);
  VarSet rs;
  rs.add(x);
  EXPECT_EQ(rt.atomically(rs, VarSet(),
                          [&](TxContext& c) { return c.read(x); }),
            5);
}

TEST(Stm, UpgradeableWritesWhenNeeded) {
  StmRuntime rt;
  Var<int> x(rt, 500);
  VarSet s;
  s.add(x);
  rt.declare_upgradeable(s);
  const bool wrote = rt.atomically_upgradeable(
      s, [&](const TxContext& ctx) { return ctx.read(x) > 100; },
      [&](TxContext& ctx) { ctx.write(x, ctx.read(x) / 2); });
  EXPECT_TRUE(wrote);
  VarSet rs;
  rs.add(x);
  EXPECT_EQ(rt.atomically(rs, VarSet(),
                          [&](TxContext& c) { return c.read(x); }),
            250);
}

TEST(Stm, ConcurrentUpgradeablesMaintainInvariant) {
  // Threads decrement a counter only while positive, via upgradeable
  // transactions.  The commit segment must re-read (Sec. 3.6 caveat): if
  // it blindly reused the decision-segment value, the counter would go
  // negative under contention.
  StmRuntime rt;
  Var<long> counter(rt, 2000);
  VarSet s;
  s.add(counter);
  rt.declare_upgradeable(s);
  rt.freeze();

  std::vector<std::thread> threads;
  std::atomic<long> decrements{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int k = 0; k < 400; ++k) {
        const bool wrote = rt.atomically_upgradeable(
            s,
            [&](const TxContext& ctx) { return ctx.read(counter) > 0; },
            [&](TxContext& ctx) {
              const long v = ctx.read(counter);  // re-read!
              if (v > 0) {
                ctx.write(counter, v - 1);
                decrements.fetch_add(1);
              }
            });
        (void)wrote;
      }
    });
  }
  for (auto& th : threads) th.join();
  const long final_val = rt.atomically(s, VarSet(), [&](TxContext& ctx) {
    return ctx.read(counter);
  });
  EXPECT_GE(final_val, 0);
  EXPECT_EQ(final_val, 2000 - decrements.load());
}

TEST(Stm, DisjointTransactionsRunConcurrently) {
  // Two disjoint variables: transactions on them must be able to overlap.
  StmRuntime rt;
  Var<int> x(rt, 0);
  Var<int> y(rt, 0);
  VarSet sx, sy;
  sx.add(x);
  sy.add(y);
  rt.declare_transaction(VarSet(), sx);
  rt.declare_transaction(VarSet(), sy);
  rt.freeze();

  std::atomic<int> inside{0}, peak{0};
  auto worker = [&](VarSet& s, auto& var) {
    for (int k = 0; k < 1000; ++k) {
      rt.atomically(VarSet(), s, [&](TxContext& ctx) {
        const int now = inside.fetch_add(1) + 1;
        int p = peak.load();
        while (now > p && !peak.compare_exchange_weak(p, now)) {
        }
        // Yield inside the transaction so the disjoint transaction on the
        // other variable can interleave even on a single-core host.
        std::this_thread::yield();
        ctx.write(var, ctx.read(var) + 1);
        inside.fetch_sub(1);
        return 0;
      });
    }
  };
  std::thread a([&] { worker(sx, x); });
  std::thread b([&] { worker(sy, y); });
  a.join();
  b.join();
  EXPECT_GE(peak.load(), 2);
}

}  // namespace
}  // namespace rwrnlp::stm
