// Shared test harness for the lock front-end suites.
//
// One copy of the fixtures that used to be duplicated across
// cancel_stress_test, timed_lock_test, the combining tests, and the replay
// tests — and that the matrix conformance suite drives over every cell:
//
//  * fault_scale()            — CI fault-injection iteration multiplier
//  * none(q)                  — the empty resource set
//  * expect_engine_drained()  — post-run engine census (nothing held/queued)
//  * SharedState / worker / expect_census_clean
//                             — mutual-exclusion census stress fixture
//  * run_mixed_timed_workload — random mixed read/write/timed thread pool
//
// Header-only; include from tests with `#include "support/harness.hpp"`.
#pragma once

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <random>
#include <thread>
#include <vector>

#include "locks/multi_lock.hpp"
#include "rsm/engine.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace rwrnlp::locks::support {

/// Iteration multiplier for the CI fault-injection leg: set
/// RWRNLP_CANCEL_FAULTS=1 in the environment to scale stress loops ~4x.
inline int fault_scale() {
  const char* env = std::getenv("RWRNLP_CANCEL_FAULTS");
  return (env != nullptr && env[0] != '\0' && env[0] != '0') ? 4 : 1;
}

/// Iteration multiplier for the crash-recovery fault-injection leg: set
/// RWRNLP_CRASH_FAULTS=1 to scale the crash campaign's stress loops ~4x
/// (mirrors fault_scale()/RWRNLP_CANCEL_FAULTS for the tsan-crash-faults
/// CI leg).
inline int crash_fault_scale() {
  const char* env = std::getenv("RWRNLP_CRASH_FAULTS");
  return (env != nullptr && env[0] != '\0' && env[0] != '0') ? 4 : 1;
}

/// The empty resource set over a q-resource universe.
inline ResourceSet none(std::size_t q) { return ResourceSet(q); }

/// Post-run census: the engine holds nothing, queues nothing, and has no
/// incomplete request.  Every stress/replay test ends with this.
inline void expect_engine_drained(rsm::Engine& engine, std::size_t q) {
  EXPECT_EQ(engine.incomplete_count(), 0u);
  for (ResourceId l = 0; l < q; ++l) {
    EXPECT_TRUE(engine.read_holders(l).empty()) << "resource " << l;
    EXPECT_FALSE(engine.write_locked(l)) << "resource " << l;
    EXPECT_TRUE(engine.write_queue(l).empty()) << "resource " << l;
    EXPECT_EQ(engine.read_queue_depth(l), 0u) << "resource " << l;
  }
}

/// Mutual-exclusion census shared by the stress workers: per-resource
/// reader/writer presence counters plus TSan-visible data cells (written
/// under write locks, compared under read locks — a protocol bug shows up
/// as a torn pair or a TSan race report).
struct SharedState {
  static constexpr std::size_t kMaxResources = 16;

  explicit SharedState(std::size_t q) : q(q) {
    RWRNLP_REQUIRE(q <= kMaxResources,
                   "SharedState supports at most " << kMaxResources
                                                   << " resources");
  }

  std::size_t q;
  std::atomic<int> writers[kMaxResources] = {};
  std::atomic<int> readers[kMaxResources] = {};
  std::atomic<bool> violated{false};
  std::uint64_t cells[kMaxResources][2] = {};

  void enter_write(const ResourceSet& writes) {
    writes.for_each([&](ResourceId l) {
      if (writers[l].fetch_add(1) != 0 || readers[l].load() != 0)
        violated = true;
      ++cells[l][0];
      ++cells[l][1];
    });
  }
  void exit_write(const ResourceSet& writes) {
    writes.for_each([&](ResourceId l) { writers[l].fetch_sub(1); });
  }
  void enter_read(const ResourceSet& reads) {
    reads.for_each([&](ResourceId l) {
      readers[l].fetch_add(1);
      if (writers[l].load() != 0) violated = true;
      if (cells[l][0] != cells[l][1]) violated = true;
    });
  }
  void exit_read(const ResourceSet& reads) {
    reads.for_each([&](ResourceId l) { readers[l].fetch_sub(1); });
  }
};

inline ResourceSet random_set(Rng& rng, std::size_t q, ResourceId base,
                              std::size_t span, std::size_t max_size) {
  ResourceSet rs(q);
  const std::size_t n = 1 + rng.next_below(max_size);
  for (std::size_t i = 0; i < n; ++i)
    rs.set(base + static_cast<ResourceId>(rng.next_below(span)));
  return rs;
}

/// Census stress worker: random reads / writes / mixed requests confined to
/// [base, base + span), each validated against the shared census.
inline void worker(MultiResourceLock& lock, SharedState& st,
                   std::uint64_t seed, ResourceId base, std::size_t span,
                   int ops) {
  Rng rng(seed);
  const std::size_t q = lock.num_resources();
  for (int i = 0; i < ops; ++i) {
    const std::uint64_t kind = rng.next_below(10);
    if (kind < 5) {  // read
      const ResourceSet rs = random_set(rng, q, base, span, 3);
      LockToken t = lock.acquire(rs, ResourceSet(q));
      st.enter_read(rs);
      st.exit_read(rs);
      lock.release(t);
    } else if (kind < 8) {  // write
      const ResourceSet rs = random_set(rng, q, base, span, 2);
      LockToken t = lock.acquire(ResourceSet(q), rs);
      st.enter_write(rs);
      st.exit_write(rs);
      lock.release(t);
    } else {  // mixed (disjoint read and write sets)
      const ResourceSet writes = random_set(rng, q, base, span, 2);
      ResourceSet reads = random_set(rng, q, base, span, 2);
      reads -= writes;
      LockToken t = lock.acquire(reads, writes);
      st.enter_read(reads);
      st.enter_write(writes);
      st.exit_write(writes);
      st.exit_read(reads);
      lock.release(t);
    }
  }
}

inline void expect_census_clean(const SharedState& st) {
  EXPECT_FALSE(st.violated.load()) << "mutual exclusion violated";
  for (std::size_t l = 0; l < st.q; ++l) {
    EXPECT_EQ(st.writers[l].load(), 0);
    EXPECT_EQ(st.readers[l].load(), 0);
    EXPECT_EQ(st.cells[l][0], st.cells[l][1]);
  }
}

/// Shape of the random mixed workload the replay tests drive: a per-op coin
/// in [0, coin_sides) picks read pair / single write / disjoint mixed, and a
/// subset of operations goes through the timed API (some of which cancel
/// under contention).
struct MixedWorkloadOptions {
  std::size_t resources = 4;
  /// Resources actually touched: picks are uniform over [0, pick_span).
  /// 0 means the whole universe.  Lets the workload span a universe wider
  /// than the footprints (e.g. one component of a sharded lock).
  std::size_t pick_span = 0;
  std::size_t threads = 4;
  int iters = 60;
  int coin_sides = 6;   ///< coin is uniform over [0, coin_sides)
  int read_below = 3;   ///< coin < read_below        -> two-resource read
  int write_below = 5;  ///< coin in [read_below, ..) -> single write;
                        ///< coin >= write_below      -> disjoint mixed
  /// When true, only write-carrying requests draw the timed coin (the
  /// read-heavy indicator workload); when false every request does.
  bool timed_writers_only = false;
  std::chrono::nanoseconds timeout = std::chrono::microseconds(30);
  std::chrono::nanoseconds hold = std::chrono::microseconds(5);
};

/// Random mixed workload (reads, writes, mixed requests, and a timed subset
/// that cancels under contention) against any front end.
template <typename Lock>
void run_mixed_timed_workload(Lock& lock, unsigned seed_base,
                              const MixedWorkloadOptions& o = {}) {
  std::vector<std::thread> threads;
  threads.reserve(o.threads);
  for (std::size_t tid = 0; tid < o.threads; ++tid) {
    threads.emplace_back([&, tid] {
      std::mt19937 rng(seed_base + static_cast<unsigned>(tid));
      std::uniform_int_distribution<int> coin(0, o.coin_sides - 1);
      const std::size_t span = o.pick_span == 0 ? o.resources : o.pick_span;
      std::uniform_int_distribution<std::size_t> pick(0, span - 1);
      for (int k = 0; k < o.iters; ++k) {
        ResourceSet reads(o.resources);
        ResourceSet writes(o.resources);
        const int c = coin(rng);
        if (c < o.read_below) {
          reads.set(pick(rng));
          reads.set(pick(rng));
        } else if (c < o.write_below) {
          writes.set(pick(rng));
        } else {  // mixed, disjoint by construction
          const std::size_t w = pick(rng);
          writes.set(w);
          const std::size_t r = pick(rng);
          if (r != w) reads.set(r);
        }
        // Note the short-circuit in writers-only mode: read-only ops do not
        // draw the timed coin, keeping per-thread RNG streams identical to
        // the historical read-heavy workload.
        const bool timed = o.timed_writers_only
                               ? (!writes.empty() && coin(rng) == 0)
                               : coin(rng) == 0;
        if (timed) {
          auto tok = lock.try_lock_for(reads, writes, o.timeout);
          if (tok) {
            std::this_thread::sleep_for(o.hold);
            lock.release(*tok);
          }
        } else {
          const LockToken tok = lock.acquire(reads, writes);
          std::this_thread::sleep_for(o.hold);
          lock.release(tok);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
}

}  // namespace rwrnlp::locks::support
