// Systematic schedule exploration of the concurrent lock front ends.
//
// These tests drive the virtual scheduler (src/testing) over small lock
// configurations: exhaustive enumeration proves every interleaving of the
// 2-thread scenarios equivalent to the sequential RSM (trace-identical,
// E-properties intact, acquisition delays within the discrete Thm. 1/2
// caps); preemption-bounded and random strategies cover larger configs; and
// a deliberately injected protocol violation (Engine::test_set_force_read_fast)
// demonstrates the detect -> minimize -> replay pipeline.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <vector>

#include "locks/sharded_rw_rnlp.hpp"
#include "locks/spin_rw_rnlp.hpp"
#include "locks/suspend_rw_rnlp.hpp"
#include "locks/yield_point.hpp"
#include "testing/explore.hpp"
#include "testing/oracle.hpp"

namespace rwrnlp::testing {
namespace {

struct Op {
  bool write;
  std::vector<ResourceId> res;
};

ResourceSet make_set(std::size_t q, const std::vector<ResourceId>& ids) {
  ResourceSet s(q);
  for (ResourceId r : ids) s.set(r);
  return s;
}

// ------------------------------------------------- generic cell factory ----

/// Live instrumented state for any flat matrix cell: the lock, its
/// invocation log (installed from construction), and a scratch flag the
/// fault-injection scenarios use for cross-thread signalling.
template <class L>
struct CellState {
  L lock;
  locks::InvocationLog log;
  std::atomic<bool> flag{false};
  template <class... A>
  explicit CellState(A&&... a) : lock(std::forward<A>(a)...) {
    lock.engine_for_test().set_trace_recording(true);
    lock.set_invocation_log(&log);
  }
};

using SpinState = CellState<locks::SpinRwRnlp>;
using SuspendState = CellState<locks::SuspendRwRnlp>;

/// Scenario generic over any flat matrix cell: each thread performs its ops
/// (acquire + release); the post-run check replays the invocation log
/// through the oracle.  The wait policy decides which yield points the
/// schedule space contains (spin cells wait in place, cv cells park), and a
/// combining configuration adds the CombinePublish / CombineWait /
/// CombineApply points — including schedules where the combiner is
/// preempted mid-batch.
template <class L>
ScenarioFactory cell_factory(std::size_t q,
                             std::vector<std::vector<Op>> per_thread,
                             std::function<std::shared_ptr<CellState<L>>()>
                                 make) {
  return [=] {
    std::shared_ptr<CellState<L>> st = make();
    ScenarioRun run;
    std::size_t max_ops = 0;
    for (const std::vector<Op>& ops : per_thread) {
      max_ops = std::max(max_ops, ops.size());
      run.bodies.push_back([st, ops, q] {
        for (const Op& op : ops) {
          const ResourceSet rs = make_set(q, op.res);
          const ResourceSet none(q);
          const locks::LockToken tok = op.write ? st->lock.acquire(none, rs)
                                                : st->lock.acquire(rs, none);
          st->lock.release(tok);
        }
      });
    }
    OracleOptions oo;
    oo.num_threads = per_thread.size();
    oo.ops_per_thread = max_ops;
    run.check = [st, oo] {
      verify_replay(st->lock.engine_for_test(), st->log, oo);
    };
    return run;
  };
}

ScenarioFactory spin_factory(std::size_t q,
                             std::vector<std::vector<Op>> per_thread,
                             rsm::WriteExpansion exp, bool combining = false) {
  return cell_factory<locks::SpinRwRnlp>(q, std::move(per_thread), [=] {
    return std::make_shared<SpinState>(q, exp, /*reads_as_writes=*/false,
                                       combining);
  });
}

ScenarioFactory suspend_factory(std::size_t q,
                                std::vector<std::vector<Op>> per_thread,
                                bool combining = false) {
  return cell_factory<locks::SuspendRwRnlp>(q, std::move(per_thread), [=] {
    return std::make_shared<SuspendState>(
        q, rsm::WriteExpansion::ExpandDomain, combining);
  });
}

// ---------------------------------------------------------------- tests ---

TEST(ReplayToken, RoundTrip) {
  EXPECT_EQ(format_replay_token({}), "-");
  EXPECT_TRUE(parse_replay_token("-").empty());
  EXPECT_TRUE(parse_replay_token("").empty());
  const std::vector<std::size_t> choices{0, 2, 1, 10};
  EXPECT_EQ(format_replay_token(choices), "0.2.1.10");
  EXPECT_EQ(parse_replay_token("0.2.1.10"), choices);
  EXPECT_EQ(parse_replay_token(format_replay_token(choices)), choices);
  EXPECT_THROW(parse_replay_token("1..2"), std::invalid_argument);
  EXPECT_THROW(parse_replay_token("abc"), std::invalid_argument);
  EXPECT_THROW(parse_replay_token("1.x"), std::invalid_argument);
}

// The acceptance scenario: exhaustive exploration of a two-thread /
// two-resource SpinRwRnlp configuration.  Every schedule must replay
// byte-identically through the oracle, preserve the E-properties, and
// respect the strict m=2 delay caps.
TEST(Explorer, ExhaustiveSpinTwoThreadsTwoResources) {
  for (const rsm::WriteExpansion exp :
       {rsm::WriteExpansion::ExpandDomain, rsm::WriteExpansion::Placeholders}) {
    ExhaustiveStrategy strategy;
    ExploreOptions opt;
    opt.max_schedules = 100000;
    const ExploreResult res =
        explore(spin_factory(2,
                             {{Op{true, {0}}},          // A: write l0
                              {Op{false, {0, 1}}}},     // B: read {l0, l1}
                             exp),
                strategy, opt);
    EXPECT_FALSE(res.failure_found)
        << "expansion=" << static_cast<int>(exp) << ": " << res.failure
        << " (token " << res.token << ")";
    EXPECT_TRUE(res.exhausted) << "state space not fully enumerated";
    EXPECT_GT(res.schedules, 10u);  // the sweep really branched
  }
}

// Same shape with write/write contention, exercising entitlement hand-off.
TEST(Explorer, ExhaustiveSpinWriterPair) {
  ExhaustiveStrategy strategy;
  ExploreOptions opt;
  opt.max_schedules = 100000;
  const ExploreResult res =
      explore(spin_factory(2,
                           {{Op{true, {0}}},   // A: write l0
                            {Op{true, {0}}}},  // B: write l0
                           rsm::WriteExpansion::ExpandDomain),
              strategy, opt);
  EXPECT_FALSE(res.failure_found) << res.failure << " (token " << res.token
                                  << ")";
  EXPECT_TRUE(res.exhausted);
  EXPECT_GT(res.schedules, 10u);
}

// The suspension variant under the same exhaustive microscope (its yield
// points sit before the mutex, and its waiters park on a predicate over
// the satisfied set instead of a spin flag).
TEST(Explorer, ExhaustiveSuspendLock) {
  ExhaustiveStrategy strategy;
  ExploreOptions opt;
  opt.max_schedules = 100000;
  const ExploreResult res =
      explore(suspend_factory(2,
                              {{Op{true, {0}}},          // A: write l0
                               {Op{false, {0, 1}}}}),    // B: read {l0, l1}
              strategy, opt);
  EXPECT_FALSE(res.failure_found) << res.failure << " (token " << res.token
                                  << ")";
  EXPECT_TRUE(res.exhausted);
  EXPECT_GT(res.schedules, 5u);
}

// Three threads, three-way contention: exhaustive would be large, so bound
// the preemption count (the CHESS observation: shallow-preemption schedules
// find almost all bugs) and sweep that subspace.
TEST(Explorer, PreemptionBoundedThreeThreads) {
  PreemptionBoundedStrategy strategy(1);
  ExploreOptions opt;
  opt.max_schedules = 100000;
  const ExploreResult res =
      explore(spin_factory(2,
                           {{Op{true, {0}}},       // A: write l0
                            {Op{false, {0, 1}}},   // B: read {l0, l1}
                            {Op{true, {1}}}},      // C: write l1
                           rsm::WriteExpansion::Placeholders),
              strategy, opt);
  EXPECT_FALSE(res.failure_found) << res.failure << " (token " << res.token
                                  << ")";
  EXPECT_GT(res.schedules, 10u);
}

// Random walks over the sharded front end.  Shards have independent
// engines, so the single-engine replay oracle does not apply; the check
// here is the census: per-resource reader/writer exclusion instrumented in
// the critical sections.
TEST(Explorer, RandomWalkShardedCensus) {
  struct ShardState {
    locks::ShardedRwRnlp lock;
    std::atomic<int> census[2];
    std::atomic<bool> violation{false};
    ShardState()
        : lock(2, {ResourceSet(2, {0}), ResourceSet(2, {1})}) {
      census[0] = 0;
      census[1] = 0;
    }
    void enter(ResourceId r, bool write) {
      if (write) {
        int expected = 0;
        if (!census[r].compare_exchange_strong(expected, -1))
          violation.store(true);
      } else {
        if (census[r].fetch_add(1) < 0) violation.store(true);
      }
    }
    void exit(ResourceId r, bool write) {
      if (write) {
        census[r].store(0);
      } else {
        census[r].fetch_sub(1);
      }
    }
  };
  const ScenarioFactory factory = [] {
    auto st = std::make_shared<ShardState>();
    const auto section = [st](bool write, ResourceId r) {
      const ResourceSet rs(2, {r});
      const ResourceSet none(2);
      const locks::LockToken tok =
          write ? st->lock.acquire(none, rs) : st->lock.acquire(rs, none);
      st->enter(r, write);
      st->exit(r, write);
      st->lock.release(tok);
    };
    ScenarioRun run;
    run.bodies.push_back([section] {
      section(true, 0);
      section(false, 1);
    });
    run.bodies.push_back([section] {
      section(false, 0);
      section(true, 1);
    });
    run.check = [st] {
      if (st->violation.load())
        throw std::logic_error("census: reader/writer exclusion violated");
    };
    return run;
  };
  RandomStrategy strategy(/*seed=*/42, /*num_schedules=*/40);
  const ExploreResult res = explore(factory, strategy);
  EXPECT_FALSE(res.failure_found) << res.failure << " (token " << res.token
                                  << ")";
  EXPECT_EQ(res.schedules, 40u);
}

// Deadlocked schedules are detected, not hung: a virtual thread waiting on
// a predicate that never turns true leaves no runnable thread.
TEST(Explorer, DeadlockIsReportedNotHung) {
  const ScenarioFactory factory = [] {
    ScenarioRun run;
    run.bodies.push_back([] {
      locks::sched_wait(locks::YieldPoint::SatisfactionWait,
                        [] { return false; });
    });
    return run;
  };
  ExhaustiveStrategy strategy;
  ExploreOptions opt;
  opt.max_schedules = 1;
  const ExploreResult res = explore(factory, strategy, opt);
  ASSERT_TRUE(res.failure_found);
  EXPECT_NE(res.failure.find("deadlock"), std::string::npos) << res.failure;
}

// Fault injection, part 1: force the uncontended-read fast path while a
// writer *holds* the resource.  The live engine's own locking invariant
// ("read lock over writer") trips on every schedule; the explorer catches
// it, minimizes the schedule, and the token replays deterministically.
TEST(Explorer, InjectedFastPathOverHolderIsCaughtAndReplayable) {
  const ScenarioFactory factory = [] {
    auto st =
        std::make_shared<SpinState>(2, rsm::WriteExpansion::ExpandDomain);
    st->lock.engine_for_test().test_set_force_read_fast(true);
    ScenarioRun run;
    run.bodies.push_back([st] {  // writer: hold l0 until the reader issued
      const locks::LockToken tok =
          st->lock.acquire(ResourceSet(2), ResourceSet(2, {0}));
      locks::sched_wait(locks::YieldPoint::SatisfactionWait,
                        [st] { return st->flag.load(); });
      st->lock.release(tok);
    });
    run.bodies.push_back([st] {  // reader: forced fast path over the holder
      locks::sched_wait(locks::YieldPoint::SatisfactionWait, [st] {
        return st->lock.engine_for_test().write_locked(0);
      });
      const locks::LockToken tok =
          st->lock.acquire(ResourceSet(2, {0}), ResourceSet(2));
      st->flag.store(true);
      st->lock.release(tok);
    });
    OracleOptions oo;
    oo.num_threads = 2;
    run.check = [st, oo] {
      verify_replay(st->lock.engine_for_test(), st->log, oo);
    };
    return run;
  };

  ExhaustiveStrategy strategy;
  const ExploreResult res = explore(factory, strategy);
  ASSERT_TRUE(res.failure_found);
  EXPECT_EQ(res.schedules, 1u);  // manifests on the very first schedule
  EXPECT_NE(res.failure.find("read lock over writer"), std::string::npos)
      << res.failure;

  // The minimized token reproduces the failure, deterministically.
  const std::string replay1 = replay(factory, res.token);
  const std::string replay2 = replay(factory, res.token);
  EXPECT_FALSE(replay1.empty());
  EXPECT_EQ(replay1, replay2);
  EXPECT_EQ(replay1, res.failure);
  // And the un-minimized original token fails as well.
  EXPECT_FALSE(replay(factory, res.original_token).empty());
}

// Fault injection, part 2: force the fast path past an *entitled* (not yet
// satisfied) writer.  The live engine stays structurally consistent — no
// per-invocation check fires — so only the replay oracle can notice that
// the fast-path precondition did not hold.  Exhaustive search must find
// interleavings where it does.
TEST(Explorer, InjectedFastPathPastEntitledWriterIsCaughtByOracle) {
  const ScenarioFactory factory = [] {
    auto st =
        std::make_shared<SpinState>(2, rsm::WriteExpansion::ExpandDomain);
    st->lock.engine_for_test().test_set_force_read_fast(true);
    ScenarioRun run;
    run.bodies.push_back([st] {  // A: read-hold l0 until B queued behind it
      const locks::LockToken tok =
          st->lock.acquire(ResourceSet(2, {0}), ResourceSet(2));
      locks::sched_wait(locks::YieldPoint::SatisfactionWait, [st] {
        return !st->lock.engine_for_test().write_queue(0).empty();
      });
      st->lock.release(tok);
    });
    run.bodies.push_back([st] {  // B: writer, entitled behind A's read hold
      locks::sched_wait(locks::YieldPoint::SatisfactionWait, [st] {
        return !st->lock.engine_for_test().read_holders(0).empty();
      });
      const locks::LockToken tok =
          st->lock.acquire(ResourceSet(2), ResourceSet(2, {0}));
      st->lock.release(tok);
    });
    run.bodies.push_back([st] {  // C: forced fast read past the queued writer
      locks::sched_wait(locks::YieldPoint::SatisfactionWait, [st] {
        return !st->lock.engine_for_test().write_queue(0).empty();
      });
      const locks::LockToken tok =
          st->lock.acquire(ResourceSet(2, {0}), ResourceSet(2));
      st->lock.release(tok);
    });
    OracleOptions oo;
    oo.num_threads = 3;
    run.check = [st, oo] {
      verify_replay(st->lock.engine_for_test(), st->log, oo);
    };
    return run;
  };

  ExhaustiveStrategy strategy;
  const ExploreResult res = explore(factory, strategy);
  ASSERT_TRUE(res.failure_found) << "exhaustive search missed the injected "
                                    "violation after "
                                 << res.schedules << " schedules";
  // Replay is deterministic for both tokens.
  const std::string replay1 = replay(factory, res.token);
  EXPECT_FALSE(replay1.empty());
  EXPECT_EQ(replay1, replay(factory, res.token));
  EXPECT_EQ(replay1, res.failure);
  EXPECT_FALSE(replay(factory, res.original_token).empty());
}

// Control experiment: the same three-thread scenario *without* the fault
// hook passes its full exhaustive sweep — the harness flags the injected
// bug, not the scenario shape.
TEST(Explorer, EntitledWriterScenarioPassesWithoutInjection) {
  const ScenarioFactory factory = [] {
    auto st =
        std::make_shared<SpinState>(2, rsm::WriteExpansion::ExpandDomain);
    ScenarioRun run;
    run.bodies.push_back([st] {
      const locks::LockToken tok =
          st->lock.acquire(ResourceSet(2, {0}), ResourceSet(2));
      locks::sched_wait(locks::YieldPoint::SatisfactionWait, [st] {
        return !st->lock.engine_for_test().write_queue(0).empty();
      });
      st->lock.release(tok);
    });
    run.bodies.push_back([st] {
      locks::sched_wait(locks::YieldPoint::SatisfactionWait, [st] {
        return !st->lock.engine_for_test().read_holders(0).empty();
      });
      const locks::LockToken tok =
          st->lock.acquire(ResourceSet(2), ResourceSet(2, {0}));
      st->lock.release(tok);
    });
    OracleOptions oo;
    oo.num_threads = 2;
    run.check = [st, oo] {
      verify_replay(st->lock.engine_for_test(), st->log, oo);
    };
    return run;
  };
  ExhaustiveStrategy strategy;
  ExploreOptions opt;
  opt.max_schedules = 100000;
  const ExploreResult res = explore(factory, strategy, opt);
  EXPECT_FALSE(res.failure_found) << res.failure << " (token " << res.token
                                  << ")";
  EXPECT_TRUE(res.exhausted);
}

// ----------------------------------------------------- flat combining ----

// Exhaustive sweep of the combined spin front end: the broker's publish /
// wait / apply interleavings are part of the schedule space, and every
// schedule must still replay byte-identically through the sequential
// oracle.  This covers combiner hand-off (B's invocation applied by A) in
// both directions, self-combining, and the publish-just-after-scan race.
TEST(ExplorerCombining, ExhaustiveSpinReadWriteContention) {
  for (const rsm::WriteExpansion exp :
       {rsm::WriteExpansion::ExpandDomain, rsm::WriteExpansion::Placeholders}) {
    ExhaustiveStrategy strategy;
    ExploreOptions opt;
    opt.max_schedules = 400000;
    const ExploreResult res =
        explore(spin_factory(2,
                             {{Op{true, {0}}},          // A: write l0
                              {Op{false, {0, 1}}}},     // B: read {l0, l1}
                             exp, /*combining=*/true),
                strategy, opt);
    EXPECT_FALSE(res.failure_found)
        << "expansion=" << static_cast<int>(exp) << ": " << res.failure
        << " (token " << res.token << ")";
    EXPECT_TRUE(res.exhausted) << "state space not fully enumerated";
    EXPECT_GT(res.schedules, 10u);
  }
}

// Writer/writer contention through the broker: entitlement hand-off where
// the satisfying Complete and the waiting Issue may land in one batch.
TEST(ExplorerCombining, ExhaustiveSpinWriterPair) {
  ExhaustiveStrategy strategy;
  ExploreOptions opt;
  opt.max_schedules = 400000;
  const ExploreResult res =
      explore(spin_factory(2,
                           {{Op{true, {0}}},   // A: write l0
                            {Op{true, {0}}}},  // B: write l0
                           rsm::WriteExpansion::ExpandDomain,
                           /*combining=*/true),
              strategy, opt);
  EXPECT_FALSE(res.failure_found) << res.failure << " (token " << res.token
                                  << ")";
  EXPECT_TRUE(res.exhausted);
  EXPECT_GT(res.schedules, 10u);
}

// Three threads, preemption-bounded: specifically covers the combiner
// preempted *mid-batch* (the spin combiner yields at CombineApply before
// each invocation it applies), with a third thread publishing into — or
// spinning against — the half-finished batch.
TEST(ExplorerCombining, PreemptionBoundedCombinerMidBatch) {
  PreemptionBoundedStrategy strategy(1);
  ExploreOptions opt;
  opt.max_schedules = 400000;
  const ExploreResult res =
      explore(spin_factory(2,
                           {{Op{true, {0}}},       // A: write l0
                            {Op{false, {0, 1}}},   // B: read {l0, l1}
                            {Op{true, {1}}}},      // C: write l1
                           rsm::WriteExpansion::Placeholders,
                           /*combining=*/true),
              strategy, opt);
  EXPECT_FALSE(res.failure_found) << res.failure << " (token " << res.token
                                  << ")";
  EXPECT_GT(res.schedules, 10u);
}

// The suspension variant's combined path under exhaustive exploration (its
// combiner runs under std::mutex and never parks mid-batch; the wakeup of
// batch-satisfied waiters goes through the shared condition variable).
TEST(ExplorerCombining, ExhaustiveSuspendLock) {
  ExhaustiveStrategy strategy;
  ExploreOptions opt;
  opt.max_schedules = 400000;
  const ExploreResult res =
      explore(suspend_factory(2,
                              {{Op{true, {0}}},          // A: write l0
                               {Op{false, {0, 1}}}},     // B: read {l0, l1}
                              /*combining=*/true),
              strategy, opt);
  EXPECT_FALSE(res.failure_found) << res.failure << " (token " << res.token
                                  << ")";
  EXPECT_TRUE(res.exhausted);
  EXPECT_GT(res.schedules, 5u);
}

// ------------------------------------------------- matrix cell sweep ------

// The canonical writer/reader collision swept across matrix cells through
// the one generic factory — notably the adaptive spin-then-suspend cell,
// whose pre-park spin budget has no other explorer coverage.  Every cell
// must pass its full exhaustive sweep with byte-equal oracle replays.
TEST(ExplorerMatrix, ExhaustiveCanonicalScenarioAcrossCells) {
  const std::vector<std::vector<Op>> scenario = {
      {Op{true, {0}}},       // A: write l0
      {Op{false, {0, 1}}}};  // B: read {l0, l1}
  struct Sweep {
    const char* label;
    ScenarioFactory factory;
  };
  const std::vector<Sweep> sweeps = {
      {"spin-classic", cell_factory<locks::SpinClassicCell>(2, scenario, [] {
         return std::make_shared<CellState<locks::SpinClassicCell>>(2);
       })},
      {"suspend-fast", cell_factory<locks::SuspendFastCell>(2, scenario, [] {
         return std::make_shared<CellState<locks::SuspendFastCell>>(2);
       })},
      {"adaptive-fast", cell_factory<locks::AdaptiveRwRnlp>(2, scenario, [] {
         return std::make_shared<CellState<locks::AdaptiveRwRnlp>>(2);
       })},
      {"adaptive-combining",
       cell_factory<locks::AdaptiveCombiningCell>(2, scenario, [] {
         return std::make_shared<CellState<locks::AdaptiveCombiningCell>>(2);
       })},
  };
  for (const Sweep& s : sweeps) {
    SCOPED_TRACE(s.label);
    ExhaustiveStrategy strategy;
    ExploreOptions opt;
    opt.max_schedules = 400000;
    const ExploreResult res = explore(s.factory, strategy, opt);
    EXPECT_FALSE(res.failure_found)
        << res.failure << " (token " << res.token << ")";
    EXPECT_TRUE(res.exhausted) << "state space not fully enumerated";
    EXPECT_GT(res.schedules, 5u);
  }
}

// ------------------------------------------------- cancellation faults ----

// Cancellation as fault injection: thread B withdraws a queued writer
// (try_lock_until with an already-expired deadline) while holder A decides —
// at every reachable yield point — when to release.  Exhaustive exploration
// covers both outcomes of the timeout-vs-grant race: schedules where A
// releases before B's cancel resolves (the grant wins and B must report the
// lock as acquired) and schedules where the cancel goes through (B must
// vanish from every queue).  Each schedule replays its log — Cancel records
// included — through the validating oracle, and must leave the engine fully
// drained: a canceled request may never linger as a holder or queue entry.
TEST(Explorer, CancellationAtEveryYieldPointSpin) {
  const ScenarioFactory factory = [] {
    auto st =
        std::make_shared<SpinState>(1, rsm::WriteExpansion::ExpandDomain);
    ScenarioRun run;
    run.bodies.push_back([st] {  // A: hold l0 until B's request is issued
      const locks::LockToken tok =
          st->lock.acquire(ResourceSet(1), ResourceSet(1, {0}));
      locks::sched_wait(locks::YieldPoint::SatisfactionWait,
                        [st] { return st->log.size() >= 2; });
      st->lock.release(tok);
    });
    run.bodies.push_back([st] {  // B: timed write, deadline already expired
      auto tok =
          st->lock.try_lock_until(ResourceSet(1), ResourceSet(1, {0}),
                                  std::chrono::steady_clock::time_point{});
      if (tok) st->lock.release(*tok);
    });
    OracleOptions oo;
    oo.num_threads = 2;
    run.check = [st, oo] {
      verify_replay(st->lock.engine_for_test(), st->log, oo);
      rsm::Engine& eng = st->lock.engine_for_test();
      if (eng.incomplete_count() != 0)
        throw std::logic_error("canceled/completed requests leaked: engine "
                               "not drained after the schedule");
      if (!eng.read_holders(0).empty() || eng.write_locked(0) ||
          !eng.write_queue(0).empty())
        throw std::logic_error("resource still held or queued on after the "
                               "schedule (cancel left residue)");
    };
    return run;
  };
  ExhaustiveStrategy strategy;
  ExploreOptions opt;
  opt.max_schedules = 100000;
  const ExploreResult res = explore(factory, strategy, opt);
  EXPECT_FALSE(res.failure_found) << res.failure << " (token " << res.token
                                  << ")";
  EXPECT_TRUE(res.exhausted);
  EXPECT_GT(res.schedules, 5u);  // the cancel path really branched
}

// The suspension front end resolves the same race through its condition
// variable and an unconditional Cancel yield point after the wait.
TEST(Explorer, CancellationAtEveryYieldPointSuspend) {
  const ScenarioFactory factory = [] {
    auto st = std::make_shared<SuspendState>(1);
    ScenarioRun run;
    run.bodies.push_back([st] {
      const locks::LockToken tok =
          st->lock.acquire(ResourceSet(1), ResourceSet(1, {0}));
      locks::sched_wait(locks::YieldPoint::SatisfactionWait,
                        [st] { return st->log.size() >= 2; });
      st->lock.release(tok);
    });
    run.bodies.push_back([st] {
      auto tok =
          st->lock.try_lock_until(ResourceSet(1), ResourceSet(1, {0}),
                                  std::chrono::steady_clock::time_point{});
      if (tok) st->lock.release(*tok);
    });
    OracleOptions oo;
    oo.num_threads = 2;
    run.check = [st, oo] {
      verify_replay(st->lock.engine_for_test(), st->log, oo);
      if (st->lock.engine_for_test().incomplete_count() != 0)
        throw std::logic_error("engine not drained after the schedule");
    };
    return run;
  };
  ExhaustiveStrategy strategy;
  ExploreOptions opt;
  opt.max_schedules = 100000;
  const ExploreResult res = explore(factory, strategy, opt);
  EXPECT_FALSE(res.failure_found) << res.failure << " (token " << res.token
                                  << ")";
  EXPECT_TRUE(res.exhausted);
  EXPECT_GT(res.schedules, 5u);
}

// Fault injection, part 3: a protocol violation *after* a cancellation.  B
// cancels a queued writer; only then does C take the forced read fast path
// over A's write hold, tripping the live invariant.  The minimized schedule
// must therefore thread the needle through the cancel — proving that
// detect -> minimize -> replay round-trips deterministically even when the
// reproduction depends on a Cancel invocation in the log.
TEST(Explorer, InjectedViolationAfterCancellationIsReplayable) {
  const ScenarioFactory factory = [] {
    auto st =
        std::make_shared<SpinState>(1, rsm::WriteExpansion::ExpandDomain);
    st->lock.engine_for_test().test_set_force_read_fast(true);
    const auto canceled = [st] {
      return std::any_of(st->log.begin(), st->log.end(),
                         [](const locks::InvocationRecord& r) {
                           return r.kind == locks::InvocationKind::Cancel;
                         });
    };
    ScenarioRun run;
    run.bodies.push_back([st] {  // A: hold l0 until C got through
      const locks::LockToken tok =
          st->lock.acquire(ResourceSet(1), ResourceSet(1, {0}));
      locks::sched_wait(locks::YieldPoint::SatisfactionWait,
                        [st] { return st->flag.load(); });
      st->lock.release(tok);
    });
    run.bodies.push_back([st] {  // B: queued writer, withdrawn by timeout
      locks::sched_wait(locks::YieldPoint::SatisfactionWait, [st] {
        return st->lock.engine_for_test().write_locked(0);
      });
      auto tok =
          st->lock.try_lock_until(ResourceSet(1), ResourceSet(1, {0}),
                                  std::chrono::steady_clock::time_point{});
      if (tok) st->lock.release(*tok);
    });
    run.bodies.push_back([st, canceled] {  // C: forced fast read over holder
      locks::sched_wait(locks::YieldPoint::SatisfactionWait, canceled);
      const locks::LockToken tok =
          st->lock.acquire(ResourceSet(1, {0}), ResourceSet(1));
      st->flag.store(true);
      st->lock.release(tok);
    });
    OracleOptions oo;
    oo.num_threads = 3;
    run.check = [st, oo] {
      verify_replay(st->lock.engine_for_test(), st->log, oo);
    };
    return run;
  };

  ExhaustiveStrategy strategy;
  const ExploreResult res = explore(factory, strategy);
  ASSERT_TRUE(res.failure_found) << "search missed the injected violation "
                                    "behind the cancellation after "
                                 << res.schedules << " schedules";
  EXPECT_NE(res.failure.find("read lock over writer"), std::string::npos)
      << res.failure;
  const std::string replay1 = replay(factory, res.token);
  const std::string replay2 = replay(factory, res.token);
  EXPECT_FALSE(replay1.empty());
  EXPECT_EQ(replay1, replay2);
  EXPECT_EQ(replay1, res.failure);
  EXPECT_FALSE(replay(factory, res.original_token).empty());
}

// ------------------------------------------------- reader indicator ------

// Exhaustive sweep of the indicator-enabled spin front end over the
// canonical writer/reader collision.  The IndicatorPublish yield point sits
// between a reader's stripe publish and its writer-present re-check, and
// IndicatorSweep parks the writer while stripes drain — so the enumerated
// space contains, among others, the exact race the design section proves
// safe: the writer arrives *between* publish and re-check, the reader
// retracts, and its acquisition falls back to the slow path.  Every
// schedule must replay byte-identically (retracted publishes leave no log
// record at all — that is the R1-equivalence claim), and the aggregate
// counters prove both the fast-grant and the retract outcome were actually
// reached.
TEST(ExplorerIndicator, ExhaustiveRetractRaceReplaysByteEqual) {
  auto fast_hits = std::make_shared<std::atomic<std::uint64_t>>(0);
  auto retractions = std::make_shared<std::atomic<std::uint64_t>>(0);
  const ScenarioFactory factory = [fast_hits, retractions] {
    auto st =
        std::make_shared<SpinState>(2, rsm::WriteExpansion::ExpandDomain);
    st->lock.enable_reader_indicator();
    ScenarioRun run;
    run.bodies.push_back([st] {  // A: write l0 (arrive -> sweep -> admit)
      const locks::LockToken tok =
          st->lock.acquire(ResourceSet(2), ResourceSet(2, {0}));
      st->lock.release(tok);
    });
    run.bodies.push_back([st] {  // B: read {l0, l1} through the indicator
      const locks::LockToken tok =
          st->lock.acquire(ResourceSet(2, {0, 1}), ResourceSet(2));
      st->lock.release(tok);
    });
    OracleOptions oo;
    oo.num_threads = 2;
    oo.ops_per_thread = 1;
    run.check = [st, oo, fast_hits, retractions] {
      verify_replay(st->lock.engine_for_test(), st->log, oo);
      const locks::HealthReport hr = st->lock.health_report();
      fast_hits->fetch_add(hr.indicator_fast_hits);
      retractions->fetch_add(hr.indicator_retractions);
      rsm::Engine& eng = st->lock.engine_for_test();
      if (eng.incomplete_count() != 0)
        throw std::logic_error("engine not drained after the schedule");
      if (st->lock.indicator()->published_total() != 0)
        throw std::logic_error("indicator cell leaked after the schedule");
    };
    return run;
  };
  ExhaustiveStrategy strategy;
  ExploreOptions opt;
  opt.max_schedules = 400000;
  const ExploreResult res = explore(factory, strategy, opt);
  EXPECT_FALSE(res.failure_found) << res.failure << " (token " << res.token
                                  << ")";
  EXPECT_TRUE(res.exhausted) << "state space not fully enumerated";
  EXPECT_GT(res.schedules, 10u);
  // Both outcomes of the publish/re-check window were explored: schedules
  // where the reader won (fast grant) and schedules where the writer's
  // arrival forced a retract + slow-path fallback.
  EXPECT_GT(fast_hits->load(), 0u);
  EXPECT_GT(retractions->load(), 0u);
}

// The same collision on the suspension variant (futex-backed slow path,
// same indicator layer).
TEST(ExplorerIndicator, ExhaustiveSuspendRetractRace) {
  auto retractions = std::make_shared<std::atomic<std::uint64_t>>(0);
  const ScenarioFactory factory = [retractions] {
    auto st = std::make_shared<SuspendState>(2);
    st->lock.enable_reader_indicator();
    ScenarioRun run;
    run.bodies.push_back([st] {
      const locks::LockToken tok =
          st->lock.acquire(ResourceSet(2), ResourceSet(2, {0}));
      st->lock.release(tok);
    });
    run.bodies.push_back([st] {
      const locks::LockToken tok =
          st->lock.acquire(ResourceSet(2, {0, 1}), ResourceSet(2));
      st->lock.release(tok);
    });
    OracleOptions oo;
    oo.num_threads = 2;
    oo.ops_per_thread = 1;
    run.check = [st, oo, retractions] {
      verify_replay(st->lock.engine_for_test(), st->log, oo);
      retractions->fetch_add(
          st->lock.health_report().indicator_retractions);
    };
    return run;
  };
  ExhaustiveStrategy strategy;
  ExploreOptions opt;
  opt.max_schedules = 400000;
  const ExploreResult res = explore(factory, strategy, opt);
  EXPECT_FALSE(res.failure_found) << res.failure << " (token " << res.token
                                  << ")";
  EXPECT_TRUE(res.exhausted);
  EXPECT_GT(retractions->load(), 0u);
}

// Writer pair racing one indicator reader: covers sweeps overlapping
// (two writers parked at IndicatorSweep on the same stripe) and the
// depart-then-sweep hand-off between consecutive writers.
TEST(ExplorerIndicator, PreemptionBoundedWriterPairWithReader) {
  PreemptionBoundedStrategy strategy(1);
  ExploreOptions opt;
  opt.max_schedules = 400000;
  auto fast_hits = std::make_shared<std::atomic<std::uint64_t>>(0);
  const ScenarioFactory factory = [fast_hits] {
    auto st =
        std::make_shared<SpinState>(2, rsm::WriteExpansion::Placeholders);
    st->lock.enable_reader_indicator();
    ScenarioRun run;
    run.bodies.push_back([st] {
      const locks::LockToken tok =
          st->lock.acquire(ResourceSet(2), ResourceSet(2, {0}));
      st->lock.release(tok);
    });
    run.bodies.push_back([st] {
      const locks::LockToken tok =
          st->lock.acquire(ResourceSet(2), ResourceSet(2, {0}));
      st->lock.release(tok);
    });
    run.bodies.push_back([st] {
      const locks::LockToken tok =
          st->lock.acquire(ResourceSet(2, {0}), ResourceSet(2));
      st->lock.release(tok);
    });
    OracleOptions oo;
    oo.num_threads = 3;
    oo.ops_per_thread = 1;
    run.check = [st, oo, fast_hits] {
      verify_replay(st->lock.engine_for_test(), st->log, oo);
      fast_hits->fetch_add(st->lock.health_report().indicator_fast_hits);
    };
    return run;
  };
  const ExploreResult res = explore(factory, strategy, opt);
  EXPECT_FALSE(res.failure_found) << res.failure << " (token " << res.token
                                  << ")";
  EXPECT_GT(res.schedules, 10u);
  EXPECT_GT(fast_hits->load(), 0u);
}

// Cross-shard combining under random walks: writers from both components
// share one global announcement board; the census invariant (per-resource
// reader/writer exclusion) must hold on every schedule, and each shard's
// engine must drain.
TEST(ExplorerIndicator, RandomWalkCrossShardCombiningCensus) {
  struct XState {
    locks::ShardedRwRnlp lock;
    std::atomic<int> census[2];
    std::atomic<bool> violation{false};
    XState() : lock(2, {ResourceSet(2, {0}), ResourceSet(2, {1})}) {
      lock.enable_reader_indicators();
      lock.enable_cross_shard_combining();
      census[0] = 0;
      census[1] = 0;
    }
    void enter(ResourceId r, bool write) {
      if (write) {
        int expected = 0;
        if (!census[r].compare_exchange_strong(expected, -1))
          violation.store(true);
      } else {
        if (census[r].fetch_add(1) < 0) violation.store(true);
      }
    }
    void exit(ResourceId r, bool write) {
      if (write) {
        census[r].store(0);
      } else {
        census[r].fetch_sub(1);
      }
    }
  };
  const ScenarioFactory factory = [] {
    auto st = std::make_shared<XState>();
    const auto section = [st](bool write, ResourceId r) {
      const ResourceSet rs(2, {r});
      const ResourceSet none(2);
      const locks::LockToken tok =
          write ? st->lock.acquire(none, rs) : st->lock.acquire(rs, none);
      st->enter(r, write);
      st->exit(r, write);
      st->lock.release(tok);
    };
    ScenarioRun run;
    run.bodies.push_back([section] {
      section(true, 0);
      section(false, 1);
    });
    run.bodies.push_back([section] {
      section(false, 0);
      section(true, 1);
    });
    run.check = [st] {
      if (st->violation.load())
        throw std::logic_error("census: reader/writer exclusion violated");
      for (std::size_t c = 0; c < st->lock.num_components(); ++c)
        if (st->lock.shard(c).engine_for_test().incomplete_count() != 0)
          throw std::logic_error("shard engine not drained");
    };
    return run;
  };
  RandomStrategy strategy(/*seed=*/7, /*num_schedules=*/40);
  const ExploreResult res = explore(factory, strategy);
  EXPECT_FALSE(res.failure_found) << res.failure << " (token " << res.token
                                  << ")";
  EXPECT_EQ(res.schedules, 40u);
}

}  // namespace
}  // namespace rwrnlp::testing
