// Differential conformance suite over every cell of the front-end matrix.
//
// One canonical scenario corpus (src/testing/scenario_corpus.hpp) runs on
// every enabled cell from the registry (src/testing/cell_registry.hpp), and
// each cell must agree with every other cell — and with the sequential RSM —
// on everything observable:
//
//  * the corpus health-counter deltas are identical across cells (the
//    counter-semantics contract: acquired/timeouts/canceled/shed mean the
//    same thing on every front end, including the combining and indicator
//    routes),
//  * every engine's invocation log replays cleanly through the RSM oracle,
//  * every engine drains to empty and no satisfaction is left pending,
//  * re-running the corpus on a second identically configured instance
//    yields a byte-identical invocation log (determinism),
//  * the four pinned spin cells reproduce tests/golden/*.log byte-equal
//    (differential against the pre-refactor front ends), and
//  * combining / indicator counters appear exactly on the cells whose
//    configuration routes traffic through those paths.
//
// On top of the per-cell corpus sweep, the suite covers the races that used
// to be tested spin-only on the suspend and sharded cells: the grant-wins
// timeout race under a live writer, and cancellation of a partially granted
// incremental request.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>

#include "locks/front_end.hpp"
#include "support/harness.hpp"
#include "testing/cell_registry.hpp"
#include "testing/oracle.hpp"
#include "testing/scenario_corpus.hpp"

namespace rwrnlp::testing {
namespace {

namespace support = rwrnlp::locks::support;
using rwrnlp::ResourceSet;
using rwrnlp::locks::LockToken;

CorpusOptions options_for(const CellInfo& cell) {
  CorpusOptions opt;
  // The blocked-writer-cancel op holds a read lock while a writer on the
  // same resource cancels; with the indicator enabled the writer's stripe
  // sweep would spin on the held read forever on one thread.
  opt.blocked_writer_cancel = !cell.indicator;
  return opt;
}

std::string read_golden(const char* stem) {
  const std::string path =
      std::string(RWRNLP_GOLDEN_DIR) + "/" + stem + ".log";
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing golden log: " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// The registry spans every axis value and cell names are unique.
TEST(MatrixCensus, CoversEveryAxis) {
  const std::vector<CellInfo>& cells = all_cells();
  ASSERT_GE(cells.size(), 13u);
  std::set<std::string> names, waits, paths, topos;
  std::size_t pinned = 0;
  for (const CellInfo& cell : cells) {
    EXPECT_TRUE(names.insert(cell.name).second)
        << "duplicate cell name: " << cell.name;
    waits.insert(cell.wait);
    paths.insert(cell.path);
    topos.insert(cell.topo);
    if (cell.golden != nullptr) ++pinned;
  }
  EXPECT_EQ(waits, (std::set<std::string>{"spin", "suspend", "adaptive"}));
  EXPECT_EQ(paths, (std::set<std::string>{"classic", "fast", "combining"}));
  EXPECT_EQ(topos, (std::set<std::string>{"flat", "sharded"}));
  EXPECT_EQ(pinned, 4u) << "exactly the four spin cells are golden-pinned";
}

// The heart of the suite: corpus + counter contract + oracle replay +
// drain + determinism, on every cell.
TEST(MatrixConformance, CorpusOnEveryCell) {
  for (const CellInfo& cell : all_cells()) {
    SCOPED_TRACE(cell.name);
    const CorpusOptions opt = options_for(cell);
    std::unique_ptr<CellInstance> inst = cell.make();
    const CorpusStats expected = inst->run_corpus(opt);

    // Counter-semantics contract: the health deltas equal the corpus
    // expectations on every cell, regardless of which path (classic,
    // fast, combining, indicator, cross-shard) the operations took.
    const locks::HealthReport hr = inst->health();
    EXPECT_EQ(hr.acquired, expected.acquired);
    EXPECT_EQ(hr.timeouts, expected.timeouts);
    EXPECT_EQ(hr.canceled, expected.canceled);
    EXPECT_EQ(hr.shed, expected.shed);
    EXPECT_EQ(hr.incomplete, 0u);
    EXPECT_EQ(inst->pending_satisfied(), 0u);

    // Path-attribution contract: combining counters appear exactly on the
    // cells that route through a broker, indicator counters exactly on the
    // indicator cells.
    const bool combines =
        cell.path == "combining" || cell.name == "sharded-spin-cross";
    if (combines) {
      EXPECT_GT(hr.combined_invocations, 0u);
      EXPECT_GT(hr.batches_combined, 0u);
    } else {
      EXPECT_EQ(hr.combined_invocations, 0u);
      EXPECT_EQ(hr.batches_combined, 0u);
    }
    if (cell.indicator) {
      EXPECT_GT(hr.indicator_fast_hits, 0u);
      EXPECT_GT(hr.indicator_sweeps, 0u);
      // Writer-side sweep accounting: passes actually executed, each
      // reading one root word per domain resource.  Amortization (the
      // cross-shard combiner) can only merge passes, never add them, so
      // executed passes never exceed per-writer guard entries.
      EXPECT_GT(hr.writer_sweeps, 0u);
      EXPECT_GT(hr.sweep_words_read, 0u);
      EXPECT_LE(hr.writer_sweeps, hr.indicator_sweeps);
    } else {
      EXPECT_EQ(hr.indicator_fast_hits, 0u);
      EXPECT_EQ(hr.indicator_sweeps, 0u);
      EXPECT_EQ(hr.writer_sweeps, 0u);
      EXPECT_EQ(hr.sweep_words_read, 0u);
    }
    // The optimistic writer admission is an explicit opt-in
    // (set_write_fast_path); no registry cell enables it, so its counters
    // must stay zero — the toggle default cannot perturb existing cells.
    EXPECT_EQ(hr.write_fast_hits, 0u);
    EXPECT_EQ(hr.write_fast_misses, 0u);

    // Every engine drained, every log oracle-clean.
    OracleOptions oo;
    oo.num_threads = 3;  // corpus never waits; avoid the strict m=2 caps
    oo.ops_per_thread = 8;
    for (const EnginePair& ep : inst->engines()) {
      support::expect_engine_drained(*ep.engine, kCorpusResources);
      verify_replay(*ep.engine, *ep.log, oo);
    }

    // Determinism: a second identically configured instance produces a
    // byte-identical invocation log.
    std::unique_ptr<CellInstance> again = cell.make();
    again->run_corpus(opt);
    EXPECT_EQ(inst->serialized_log(), again->serialized_log())
        << "corpus run is not deterministic";
  }
}

// Differential pinning: the spin cells reproduce the pre-refactor front
// ends' logs byte-equal (tests/golden/, generated by
// tools/gen_golden_logs.cpp from the code before the matrix refactor).
TEST(MatrixConformance, SpinCellsMatchGoldenLogs) {
  for (const CellInfo& cell : all_cells()) {
    if (cell.golden == nullptr) continue;
    SCOPED_TRACE(cell.name);
    std::unique_ptr<CellInstance> inst = cell.make();
    inst->run_corpus(options_for(cell));
    EXPECT_EQ(inst->serialized_log(), read_golden(cell.golden))
        << "log diverged from the pre-refactor golden trace";
  }
}

// --- races that used to be covered spin-only ------------------------------

// Grant-wins timeout race: a timed writer races its deadline against a
// holder that releases at unpredictable times.  Whatever side wins, the
// counters must reconcile exactly and the engine must drain.
template <class Lock>
void grant_wins_race(Lock& lock, rsm::Engine& engine, int iters) {
  const std::size_t q = lock.num_resources();
  const ResourceSet none(q);
  const ResourceSet target(q, {0});
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> holder_acquires{0};
  std::thread holder([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const LockToken t = lock.acquire(none, target);
      holder_acquires.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::microseconds(2));
      lock.release(t);
    }
  });
  std::uint64_t granted = 0, timeouts = 0;
  std::mt19937 rng(0xFACE);
  std::uniform_int_distribution<int> wait_us(0, 20);
  for (int i = 0; i < iters; ++i) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::microseconds(wait_us(rng));
    const std::optional<LockToken> tok =
        lock.try_lock_until(none, target, deadline);
    if (tok) {
      ++granted;
      lock.release(*tok);
    } else {
      ++timeouts;
    }
  }
  stop = true;
  holder.join();

  EXPECT_EQ(granted + timeouts, static_cast<std::uint64_t>(iters));
  const locks::HealthReport hr = lock.health_report();
  EXPECT_EQ(hr.acquired, holder_acquires.load() + granted);
  EXPECT_EQ(hr.timeouts, timeouts);
  EXPECT_EQ(hr.canceled, timeouts);
  EXPECT_EQ(hr.incomplete, 0u);
  support::expect_engine_drained(engine, q);
}

TEST(MatrixRaces, GrantWinsTimeoutSuspend) {
  locks::SuspendRwRnlp lock(2);
  grant_wins_race(lock, lock.engine_for_test(),
                  200 * support::fault_scale());
  EXPECT_EQ(lock.blocked_waiters(), 0u);
}

TEST(MatrixRaces, GrantWinsTimeoutAdaptive) {
  locks::AdaptiveRwRnlp lock(2);
  grant_wins_race(lock, lock.engine_for_test(),
                  200 * support::fault_scale());
  EXPECT_EQ(lock.blocked_waiters(), 0u);
}

TEST(MatrixRaces, GrantWinsTimeoutSharded) {
  locks::ShardedRwRnlp lock(kCorpusResources,
                            {ResourceSet(kCorpusResources, {0, 1, 2, 3}),
                             ResourceSet(kCorpusResources, {4, 5, 6, 7})});
  grant_wins_race(lock, lock.shard(0).engine_for_test(),
                  200 * support::fault_scale());
  support::expect_engine_drained(lock.shard(1).engine_for_test(),
                                 kCorpusResources);
}

// Cancel of a partially granted incremental request: a held read blocks one
// of the initially wanted resources, so the entitled incremental request is
// granted the other and then withdraws the partial hold on its expired
// deadline.  Deterministic (single-threaded) — the deadline is already
// expired at issue.
template <class Lock>
void cancel_partial_incremental(Lock& lock) {
  const std::size_t q = lock.num_resources();
  const ResourceSet none(q);
  const LockToken rd = lock.acquire(ResourceSet(q, {1}), none);
  const std::optional<LockToken> inc = lock.try_incremental_until(
      none, ResourceSet(q, {0, 1, 2}), ResourceSet(q, {0, 1}),
      std::chrono::steady_clock::time_point{});
  EXPECT_FALSE(inc.has_value()) << "blocked incremental beat a held read";
  lock.release(rd);
  const locks::HealthReport hr = lock.health_report();
  EXPECT_EQ(hr.timeouts, 1u);
  EXPECT_EQ(hr.canceled, 1u);
  EXPECT_EQ(hr.incomplete, 0u);
}

TEST(MatrixRaces, CancelPartialIncrementalSpin) {
  locks::SpinRwRnlp lock(4);
  cancel_partial_incremental(lock);
  support::expect_engine_drained(lock.engine_for_test(), 4);
}

TEST(MatrixRaces, CancelPartialIncrementalSuspend) {
  locks::SuspendRwRnlp lock(4);
  cancel_partial_incremental(lock);
  support::expect_engine_drained(lock.engine_for_test(), 4);
  EXPECT_EQ(lock.blocked_waiters(), 0u);
}

TEST(MatrixRaces, CancelPartialIncrementalSharded) {
  locks::ShardedRwRnlp lock(kCorpusResources,
                            {ResourceSet(kCorpusResources, {0, 1, 2, 3}),
                             ResourceSet(kCorpusResources, {4, 5, 6, 7})});
  cancel_partial_incremental(lock);
  support::expect_engine_drained(lock.shard(0).engine_for_test(),
                                 kCorpusResources);
}

// --- phase-2 API parity across the matrix ---------------------------------

// Upgradeable requests behave identically on every flat wait policy:
// read half first, upgrade-to-write, and the abandon path — with no
// satisfaction left pending afterwards.
template <class Lock>
void upgrade_corpus(Lock& lock) {
  const ResourceSet rs(lock.num_resources(), {0, 1});
  {
    typename Lock::UpgradeToken t = lock.acquire_upgradeable(rs);
    ASSERT_FALSE(t.write_mode) << "uncontended read half must win";
    lock.upgrade(t);
    EXPECT_TRUE(t.write_mode);
    lock.release_upgraded(t);
  }
  {
    typename Lock::UpgradeToken t = lock.acquire_upgradeable(rs);
    ASSERT_FALSE(t.write_mode);
    lock.abandon(t);
  }
  EXPECT_EQ(lock.pending_satisfied_count(), 0u);
}

TEST(MatrixPhase2, UpgradeableOnEveryFlatWaitPolicy) {
  {
    SCOPED_TRACE("spin");
    locks::SpinRwRnlp lock(4);
    upgrade_corpus(lock);
    support::expect_engine_drained(lock.engine_for_test(), 4);
  }
  {
    SCOPED_TRACE("suspend");
    locks::SuspendRwRnlp lock(4);
    upgrade_corpus(lock);
    support::expect_engine_drained(lock.engine_for_test(), 4);
    EXPECT_EQ(lock.blocked_waiters(), 0u);
  }
  {
    SCOPED_TRACE("adaptive");
    locks::AdaptiveRwRnlp lock(4);
    upgrade_corpus(lock);
    support::expect_engine_drained(lock.engine_for_test(), 4);
  }
}

// Incremental requests grow and complete identically on every front end,
// including through the sharded delegation.
template <class Lock>
void incremental_corpus(Lock& lock) {
  const std::size_t q = lock.num_resources();
  const LockToken tok = lock.acquire_incremental(
      ResourceSet(q, {0, 1}), ResourceSet(q, {2}), ResourceSet(q, {0}));
  lock.request_more(tok, ResourceSet(q, {1, 2}));
  lock.release_incremental(tok);
}

TEST(MatrixPhase2, IncrementalOnEveryTopology) {
  {
    SCOPED_TRACE("spin");
    locks::SpinRwRnlp lock(4);
    incremental_corpus(lock);
    support::expect_engine_drained(lock.engine_for_test(), 4);
  }
  {
    SCOPED_TRACE("suspend");
    locks::SuspendRwRnlp lock(4);
    incremental_corpus(lock);
    support::expect_engine_drained(lock.engine_for_test(), 4);
  }
  {
    SCOPED_TRACE("adaptive");
    locks::AdaptiveRwRnlp lock(4);
    incremental_corpus(lock);
    support::expect_engine_drained(lock.engine_for_test(), 4);
  }
  {
    SCOPED_TRACE("sharded");
    locks::ShardedRwRnlp lock(kCorpusResources,
                              {ResourceSet(kCorpusResources, {0, 1, 2, 3}),
                               ResourceSet(kCorpusResources, {4, 5, 6, 7})});
    incremental_corpus(lock);
    support::expect_engine_drained(lock.shard(0).engine_for_test(),
                                   kCorpusResources);
  }
}

// --- matrix-wide mixed stress ---------------------------------------------

// The shared random workload runs clean on every registry cell: mutual
// exclusion census plus a drained engine afterwards.  This is the
// multi-threaded complement to the single-threaded corpus sweep.
TEST(MatrixStress, MixedWorkloadOnEveryCell) {
  for (const CellInfo& cell : all_cells()) {
    SCOPED_TRACE(cell.name);
    std::unique_ptr<CellInstance> inst = cell.make();
    support::MixedWorkloadOptions wo;
    wo.resources = kCorpusResources;
    wo.threads = 4;
    wo.iters = 25 * support::fault_scale();
    // Sharded cells only accept single-component footprints; confine the
    // picks to component 0.  Indicator cells gate the timed coin to
    // write-carrying ops (the read-heavy replay shape).
    wo.pick_span = cell.topo == "sharded" ? 4 : 0;
    wo.timed_writers_only = cell.indicator;
    support::run_mixed_timed_workload(inst->lock(), 0xBADA55, wo);
    EXPECT_EQ(inst->pending_satisfied(), 0u);
    const locks::HealthReport hr = inst->health();
    EXPECT_EQ(hr.incomplete, 0u);
    for (const EnginePair& ep : inst->engines())
      support::expect_engine_drained(*ep.engine, kCorpusResources);
  }
}

}  // namespace
}  // namespace rwrnlp::testing
