// Randomized property tests: under a P1/P2-compliant driver, verify on every
// transition the proven properties of the R/W RNLP (E1-E10, Cors. 1-2,
// Lemma 6, entitlement persistence, structural invariants) and, at the end
// of each run, the acquisition-delay bounds of Theorems 1 and 2.
#include <gtest/gtest.h>

#include <sstream>

#include "tests/rsm/exerciser.hpp"

namespace rwrnlp::rsm::testing {
namespace {

struct SweepParam {
  std::uint64_t seed;
  std::size_t m;
  std::size_t q;
  double read_prob;
  double mixed_prob;
  WriteExpansion expansion;
};

std::string param_name(const ::testing::TestParamInfo<SweepParam>& info) {
  const auto& p = info.param;
  std::ostringstream os;
  os << "seed" << p.seed << "_m" << p.m << "_q" << p.q << "_r"
     << static_cast<int>(p.read_prob * 100) << "_x"
     << static_cast<int>(p.mixed_prob * 100) << '_'
     << (p.expansion == WriteExpansion::ExpandDomain ? "expand" : "holder");
  return os.str();
}

class RsmPropertySweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(RsmPropertySweep, InvariantsAndTheoremBounds) {
  const SweepParam& p = GetParam();
  ExerciserConfig cfg;
  cfg.seed = p.seed;
  cfg.m = p.m;
  cfg.q = p.q;
  cfg.read_prob = p.read_prob;
  cfg.mixed_prob = p.mixed_prob;
  cfg.expansion = p.expansion;
  cfg.steps = 350;

  Exerciser ex(cfg);
  const ExerciserResult res = ex.run();

  // Every issued request finished (liveness under P1/P2).
  EXPECT_TRUE(ex.engine().incomplete_requests().empty());
  EXPECT_GT(res.invocations, cfg.steps);  // issue + completion each

  // Theorem 1: reader acquisition delay <= L^r_max + L^w_max.
  const double read_bound = cfg.l_read + cfg.l_write;
  EXPECT_LE(res.max_read_delay, read_bound + 1e-6)
      << "Thm. 1 violated (m=" << p.m << ", seed=" << p.seed << ")";

  // Theorem 2: writer acquisition delay <= (m-1)(L^r_max + L^w_max).
  const double write_bound =
      static_cast<double>(cfg.m - 1) * (cfg.l_read + cfg.l_write);
  EXPECT_LE(res.max_write_delay, write_bound + 1e-6)
      << "Thm. 2 violated (m=" << p.m << ", seed=" << p.seed << ")";
}

std::vector<SweepParam> make_sweep() {
  std::vector<SweepParam> out;
  for (const WriteExpansion x :
       {WriteExpansion::ExpandDomain, WriteExpansion::Placeholders}) {
    for (const std::uint64_t seed : {11ull, 22ull, 33ull}) {
      out.push_back({seed, 4, 5, 0.5, 0.0, x});
      out.push_back({seed, 2, 3, 0.7, 0.0, x});
      out.push_back({seed, 8, 6, 0.3, 0.0, x});
      out.push_back({seed, 6, 4, 0.8, 0.0, x});
      // Heavy mixing (Sec. 3.5) — writers read some resources.
      out.push_back({seed, 4, 5, 0.4, 0.6, x});
    }
  }
  // Degenerate shapes.
  out.push_back({77, 1, 1, 0.5, 0.0, WriteExpansion::ExpandDomain});
  out.push_back({78, 16, 2, 0.5, 0.0, WriteExpansion::ExpandDomain});
  out.push_back({79, 3, 12, 0.5, 0.0, WriteExpansion::Placeholders});
  out.push_back({80, 4, 5, 0.0, 0.0, WriteExpansion::ExpandDomain});  // all W
  out.push_back({81, 4, 5, 1.0, 0.0, WriteExpansion::ExpandDomain});  // all R
  return out;
}

INSTANTIATE_TEST_SUITE_P(Sweep, RsmPropertySweep,
                         ::testing::ValuesIn(make_sweep()), param_name);

// The worst case of Thm. 2's proof is *achievable*: with m-1 earlier writers
// each preceded by a fresh read phase, a writer's delay approaches
// (m-1)(L^r + L^w).  This demonstrates the bound is asymptotically tight.
TEST(TheoremTightness, WriterDelayApproachesThm2Bound) {
  constexpr std::size_t kM = 5;
  constexpr double kLr = 2.0, kLw = 3.0;
  Engine e(1, EngineOptions{});

  double t = 0;
  // A reader holds l0; m-1 writers pile up behind it, our writer last.
  const RequestId r0 = e.issue_read(t, ResourceSet(1, {0}));
  std::vector<RequestId> writers;
  for (std::size_t i = 0; i + 1 < kM; ++i) {
    t += 1e-3;
    writers.push_back(e.issue_write(t, ResourceSet(1, {0})));
  }
  t += 1e-3;
  const RequestId victim = e.issue_write(t, ResourceSet(1, {0}));
  const double victim_issue = t;

  // Alternate: reader completes after a full L^r critical section, the next
  // writer runs L^w, a fresh reader slips in *while the writer runs* (it
  // becomes entitled and wins the next phase), and so on.
  RequestId active_reader = r0;
  double reader_done = 0 + kLr;
  for (std::size_t i = 0; i + 1 < kM; ++i) {
    e.complete(reader_done, active_reader);
    EXPECT_TRUE(e.is_satisfied(writers[i]));
    const double writer_done = reader_done + kLw;
    if (i + 2 < kM) {
      // New reader arrives mid-write-phase; it will be entitled.
      active_reader =
          e.issue_read(reader_done + 0.5, ResourceSet(1, {0}));
      EXPECT_EQ(e.state(active_reader), RequestState::Entitled);
    }
    e.complete(writer_done, writers[i]);
    if (i + 2 < kM) {
      EXPECT_TRUE(e.is_satisfied(active_reader));
      reader_done = writer_done + kLr;
    } else {
      // Last earlier writer gone: the victim goes next.
      EXPECT_TRUE(e.is_satisfied(victim));
      const double delay = e.request(victim).satisfied_time - victim_issue;
      const double bound = (kM - 1) * (kLr + kLw);
      EXPECT_LE(delay, bound + 1e-9);
      EXPECT_GE(delay, bound - (kLr + kLw));  // within one phase of the bound
      e.complete(writer_done + 1, victim);
    }
  }
}

// Thm. 1 tightness: a reader that arrives just after a writer became
// entitled waits for one read phase (the writer's blockers) plus one write
// phase — approaching L^r + L^w.
TEST(TheoremTightness, ReaderDelayApproachesThm1Bound) {
  constexpr double kLr = 2.0, kLw = 3.0;
  Engine e(1, EngineOptions{});
  const RequestId r0 = e.issue_read(0, ResourceSet(1, {0}));
  const RequestId w = e.issue_write(0.001, ResourceSet(1, {0}));
  ASSERT_EQ(e.state(w), RequestState::Entitled);
  const RequestId victim = e.issue_read(0.002, ResourceSet(1, {0}));
  ASSERT_EQ(e.state(victim), RequestState::Waiting);

  e.complete(kLr, r0);  // full read phase
  ASSERT_TRUE(e.is_satisfied(w));
  e.complete(kLr + kLw, w);  // full write phase
  ASSERT_TRUE(e.is_satisfied(victim));
  const double delay = e.request(victim).acquisition_delay();
  EXPECT_LE(delay, kLr + kLw + 1e-9);
  EXPECT_GE(delay, kLr + kLw - 0.01);
  e.complete(kLr + kLw + 1, victim);
}

}  // namespace
}  // namespace rwrnlp::rsm::testing
