// Event-for-event replay of the running example of Sec. 3.2 (Fig. 2 of the
// paper), including the queue-state table of Fig. 2(b), plus the Sec. 3.4
// (placeholder) and Sec. 3.5 (mixing) continuations of the same example.
//
// Note on paper typos (documented in EXPERIMENTS.md): the prose fixes the
// request sets as N_{1,1} = {l_a, l_b} (write), N_{2,1} = {l_a, l_c} (write,
// expanded to D = {l_a, l_b, l_c}), N_{3,1} = {l_c} (read), N_{5,1} =
// {l_a, l_b} (read).  The sentence "both R_{3,1} and R_{4,1} have read
// locked l_b" is inconsistent with l_b being write-locked by R_{1,1} at that
// time; the consistent reading (which also matches "l_a and l_b are write
// locked while l_c is read locked") is that both read requests target l_c,
// so N_{4,1} = {l_c}.  Likewise "R_{5,1} is issued for l_b and l_c"
// contradicts the worked Def. 3 application at t = 8, which uses l_a and
// l_b; we follow the worked application (N_{5,1} = {l_a, l_b}).
#include <gtest/gtest.h>

#include "rsm/engine.hpp"
#include "rsm/invariants.hpp"

namespace rwrnlp::rsm {
namespace {

constexpr ResourceId kLa = 0;
constexpr ResourceId kLb = 1;
constexpr ResourceId kLc = 2;

ReadShareTable fig2_shares() {
  ReadShareTable t(3);
  // R_{5,1} may read {l_a, l_b} together => l_a ~ l_b.
  t.declare_read_request(ResourceSet(3, {kLa, kLb}));
  t.declare_read_request(ResourceSet(3, {kLc}));
  return t;
}

class Fig2Test : public ::testing::Test {
 protected:
  Fig2Test() : engine_(3, fig2_shares(), make_options()), obs_(engine_) {}

  static EngineOptions make_options() {
    EngineOptions o;
    o.expansion = WriteExpansion::ExpandDomain;
    o.validate = true;
    o.record_trace = true;
    return o;
  }

  Engine engine_;
  ProtocolObserver obs_;
};

TEST_F(Fig2Test, FullRunningExample) {
  // t=1: R^w_{1,1} issued for {l_a, l_b}; satisfied immediately (Rule W1).
  const RequestId w11 = engine_.issue_write(1, ResourceSet(3, {kLa, kLb}));
  obs_.after_invocation(InvocationKind::WriteIssue);
  EXPECT_TRUE(engine_.is_satisfied(w11));
  EXPECT_EQ(engine_.write_holder(kLa), w11);
  EXPECT_EQ(engine_.write_holder(kLb), w11);
  EXPECT_FALSE(engine_.write_locked(kLc));

  // t=2: R^w_{2,1} issued with N = {l_a, l_c}.  Because l_a ~ l_b, the
  // expanded domain is D = {l_a, l_b, l_c} (Sec. 3.2 example).  It is
  // enqueued in all three write queues and is neither satisfied (l_a, l_b
  // are write locked) nor entitled (Def. 4(c) fails).
  const RequestId w21 = engine_.issue_write(2, ResourceSet(3, {kLa, kLc}));
  obs_.after_invocation(InvocationKind::WriteIssue);
  EXPECT_EQ(engine_.request(w21).domain, ResourceSet(3, {kLa, kLb, kLc}));
  EXPECT_EQ(engine_.state(w21), RequestState::Waiting);
  for (ResourceId l : {kLa, kLb, kLc}) {
    const auto wq = engine_.write_queue(l);
    ASSERT_EQ(wq.size(), 1u) << "WQ(l" << l << ")";
    EXPECT_EQ(wq[0].req, w21);
    EXPECT_FALSE(wq[0].placeholder);
  }

  // t=3: R^r_{3,1} issued for {l_c}; satisfied immediately by Rule R1 —
  // it "cuts ahead" of the non-entitled R^w_{2,1}.
  const RequestId r31 = engine_.issue_read(3, ResourceSet(3, {kLc}));
  obs_.after_invocation(InvocationKind::ReadIssue);
  EXPECT_TRUE(engine_.is_satisfied(r31));
  EXPECT_EQ(engine_.read_holders(kLc), std::vector<RequestId>{r31});

  // t=4: R^r_{4,1} issued for {l_c}; also satisfied immediately — two
  // readers share l_c (reader parallelism) while l_a, l_b stay write locked.
  const RequestId r41 = engine_.issue_read(4, ResourceSet(3, {kLc}));
  obs_.after_invocation(InvocationKind::ReadIssue);
  EXPECT_TRUE(engine_.is_satisfied(r41));
  EXPECT_EQ(engine_.read_holders(kLc).size(), 2u);
  EXPECT_TRUE(engine_.write_locked(kLa));
  EXPECT_TRUE(engine_.write_locked(kLb));

  // t=5: R^w_{1,1} completes; R^w_{2,1} becomes entitled (Def. 4) but stays
  // blocked by the two satisfied readers: B(R^w_{2,1}) = {R_{3,1}, R_{4,1}}.
  engine_.complete(5, w11);
  obs_.after_invocation(InvocationKind::WriteComplete);
  EXPECT_EQ(engine_.state(w21), RequestState::Entitled);
  const auto blockers5 = engine_.blockers(w21);
  EXPECT_EQ(blockers5.size(), 2u);
  EXPECT_NE(std::find(blockers5.begin(), blockers5.end(), r31),
            blockers5.end());
  EXPECT_NE(std::find(blockers5.begin(), blockers5.end(), r41),
            blockers5.end());

  // t=6: R^r_{4,1} completes; B(R^w_{2,1}) shrinks to {R_{3,1}} (the
  // monotonic-shrinkage property of Cor. 1).
  engine_.complete(6, r41);
  obs_.after_invocation(InvocationKind::ReadComplete);
  EXPECT_EQ(engine_.state(w21), RequestState::Entitled);
  EXPECT_EQ(engine_.blockers(w21), std::vector<RequestId>{r31});

  // t=7: R^r_{5,1} issued for {l_a, l_b}.  Not satisfied (conflicts with
  // the entitled R^w_{2,1}) and not entitled (Def. 3(b): E(WQ(l_a)) is the
  // entitled R^w_{2,1}).
  const RequestId r51 = engine_.issue_read(7, ResourceSet(3, {kLa, kLb}));
  obs_.after_invocation(InvocationKind::ReadIssue);
  EXPECT_EQ(engine_.state(r51), RequestState::Waiting);
  EXPECT_EQ(engine_.read_queue(kLa), std::vector<RequestId>{r51});
  EXPECT_EQ(engine_.read_queue(kLb), std::vector<RequestId>{r51});

  // t=8: R^r_{3,1} completes; R^w_{2,1} is satisfied (Rule W2), locking all
  // of {l_a, l_b, l_c}; R^r_{5,1} becomes entitled (Def. 3: l_a is write
  // locked and both write queues are empty).
  engine_.complete(8, r31);
  obs_.after_invocation(InvocationKind::ReadComplete);
  EXPECT_TRUE(engine_.is_satisfied(w21));
  EXPECT_EQ(engine_.write_holder(kLa), w21);
  EXPECT_EQ(engine_.write_holder(kLb), w21);
  EXPECT_EQ(engine_.write_holder(kLc), w21);
  EXPECT_EQ(engine_.state(r51), RequestState::Entitled);
  EXPECT_EQ(engine_.blockers(r51), std::vector<RequestId>{w21});
  // Fig. 2(b): after satisfaction R^w_{2,1} is dequeued from all WQs.
  for (ResourceId l : {kLa, kLb, kLc})
    EXPECT_TRUE(engine_.write_queue(l).empty()) << "WQ(l" << l << ")";

  // t=10: R^w_{2,1} completes; R^r_{5,1} is satisfied (Rule R2).
  engine_.complete(10, w21);
  obs_.after_invocation(InvocationKind::WriteComplete);
  EXPECT_TRUE(engine_.is_satisfied(r51));
  EXPECT_EQ(engine_.read_holders(kLa), std::vector<RequestId>{r51});
  EXPECT_EQ(engine_.read_holders(kLb), std::vector<RequestId>{r51});
  // Fig. 2(b), row [10,12]: all queues empty.
  for (ResourceId l : {kLa, kLb, kLc}) {
    EXPECT_TRUE(engine_.write_queue(l).empty());
    EXPECT_TRUE(engine_.read_queue(l).empty());
  }

  // t=12: R^r_{5,1} completes; system idle again.
  engine_.complete(12, r51);
  obs_.after_invocation(InvocationKind::ReadComplete);
  for (ResourceId l : {kLa, kLb, kLc}) {
    EXPECT_FALSE(engine_.write_locked(l));
    EXPECT_FALSE(engine_.read_locked(l));
  }

  // Acquisition delays measured against the schedule of Fig. 2(a).
  EXPECT_DOUBLE_EQ(engine_.request(w11).acquisition_delay(), 0.0);
  EXPECT_DOUBLE_EQ(engine_.request(w21).acquisition_delay(), 6.0);
  EXPECT_DOUBLE_EQ(engine_.request(r31).acquisition_delay(), 0.0);
  EXPECT_DOUBLE_EQ(engine_.request(r41).acquisition_delay(), 0.0);
  EXPECT_DOUBLE_EQ(engine_.request(r51).acquisition_delay(), 3.0);
}

TEST_F(Fig2Test, QueueStateTableOfFig2b) {
  // Reproduces the rows of Fig. 2(b) (queue states for l_a and l_b).
  const RequestId w11 = engine_.issue_write(1, ResourceSet(3, {kLa, kLb}));
  // Row [0,2): all queues empty (W_{1,1} was satisfied at issuance).
  EXPECT_TRUE(engine_.write_queue(kLa).empty());
  EXPECT_TRUE(engine_.write_queue(kLb).empty());

  const RequestId w21 = engine_.issue_write(2, ResourceSet(3, {kLa, kLc}));
  // Row [2,7): WQ(l_a) = WQ(l_b) = {R^w_{2,1}}, read queues empty.
  auto expect_row_2_7 = [&] {
    ASSERT_EQ(engine_.write_queue(kLa).size(), 1u);
    EXPECT_EQ(engine_.write_queue(kLa)[0].req, w21);
    ASSERT_EQ(engine_.write_queue(kLb).size(), 1u);
    EXPECT_EQ(engine_.write_queue(kLb)[0].req, w21);
    EXPECT_TRUE(engine_.read_queue(kLa).empty());
    EXPECT_TRUE(engine_.read_queue(kLb).empty());
  };
  expect_row_2_7();
  const RequestId r31 = engine_.issue_read(3, ResourceSet(3, {kLc}));
  const RequestId r41 = engine_.issue_read(4, ResourceSet(3, {kLc}));
  expect_row_2_7();
  engine_.complete(5, w11);
  engine_.complete(6, r41);
  expect_row_2_7();

  // Row [7,8): R^r_{5,1} joins RQ(l_b) (and RQ(l_a) — see the typo note in
  // the file header); WQ unchanged.
  const RequestId r51 = engine_.issue_read(7, ResourceSet(3, {kLa, kLb}));
  ASSERT_EQ(engine_.write_queue(kLa).size(), 1u);
  EXPECT_EQ(engine_.write_queue(kLa)[0].req, w21);
  EXPECT_EQ(engine_.read_queue(kLb), std::vector<RequestId>{r51});

  // Row [8,10): write queues drain (R^w_{2,1} satisfied), R^r_{5,1} remains
  // queued while entitled.
  engine_.complete(8, r31);
  EXPECT_TRUE(engine_.write_queue(kLa).empty());
  EXPECT_TRUE(engine_.write_queue(kLb).empty());
  EXPECT_EQ(engine_.read_queue(kLb), std::vector<RequestId>{r51});

  // Row [10,12]: all queues empty.
  engine_.complete(10, w21);
  EXPECT_TRUE(engine_.read_queue(kLa).empty());
  EXPECT_TRUE(engine_.read_queue(kLb).empty());
  engine_.complete(12, r51);
}

// Sec. 3.4 continuation: with placeholders, R^w_{1,1} only needs {l_b} and
// R^w_{2,1} only needs {l_a, l_c}; R^w_{2,1} is then satisfied already at
// t = 2 (instead of t = 8), "thereby improving concurrency".
TEST(Fig2Placeholders, Sec34ExampleSatisfiedAtTimeTwo) {
  EngineOptions o;
  o.expansion = WriteExpansion::Placeholders;
  o.validate = true;
  Engine engine(3, fig2_shares(), o);
  ProtocolObserver obs(engine);

  // R^w_{1,1}: N = {l_b}; enqueues a placeholder in WQ(l_a) (l_a ~ l_b) and
  // is satisfied immediately, removing the placeholder.
  const RequestId w11 = engine.issue_write(1, ResourceSet(3, {kLb}));
  obs.after_invocation(InvocationKind::WriteIssue);
  EXPECT_TRUE(engine.is_satisfied(w11));
  EXPECT_TRUE(engine.write_queue(kLa).empty());
  EXPECT_EQ(engine.write_holder(kLb), w11);
  EXPECT_FALSE(engine.write_locked(kLa));  // the concurrency win

  // R^w_{2,1}: N = {l_a, l_c}, placeholder on l_b.  Not blocked by any
  // conflicting request (R^w_{1,1} holds only l_b) => satisfied at t = 2.
  const RequestId w21 = engine.issue_write(2, ResourceSet(3, {kLa, kLc}));
  obs.after_invocation(InvocationKind::WriteIssue);
  EXPECT_TRUE(engine.is_satisfied(w21));
  EXPECT_EQ(engine.write_holder(kLa), w21);
  EXPECT_EQ(engine.write_holder(kLc), w21);
  EXPECT_EQ(engine.write_holder(kLb), w11);
  // Placeholder removed upon satisfaction.
  EXPECT_TRUE(engine.write_queue(kLb).empty());

  engine.complete(5, w11);
  obs.after_invocation(InvocationKind::WriteComplete);
  engine.complete(6, w21);
  obs.after_invocation(InvocationKind::WriteComplete);
}

// Sec. 3.5 continuation: if R^w_{2,1} is a *mixed* request reading
// {l_a, l_b} and writing {l_c}, then R^r_{5,1} (read of {l_a, l_b}) does not
// conflict with it and is satisfied immediately at t = 7 by Rule R1.
TEST(Fig2Mixing, Sec35ExampleReaderSharesWithMixedWriter) {
  EngineOptions o;
  o.expansion = WriteExpansion::Placeholders;
  o.validate = true;
  ReadShareTable shares(3);
  shares.declare_read_request(ResourceSet(3, {kLa, kLb}));
  shares.declare_mixed_request(ResourceSet(3, {kLa, kLb}),
                               ResourceSet(3, {kLc}));
  Engine engine(3, shares, o);

  const RequestId w11 = engine.issue_write(1, ResourceSet(3, {kLa, kLb}));
  const RequestId m21 = engine.issue_mixed(2, ResourceSet(3, {kLa, kLb}),
                                           ResourceSet(3, {kLc}));
  const RequestId r31 = engine.issue_read(3, ResourceSet(3, {kLc}));
  EXPECT_TRUE(engine.is_satisfied(r31));
  EXPECT_EQ(engine.state(m21), RequestState::Waiting);

  engine.complete(5, w11);
  EXPECT_EQ(engine.state(m21), RequestState::Entitled);

  // R^r_{3,1} still read-holds l_c, which the mixed request writes.
  EXPECT_EQ(engine.blockers(m21), std::vector<RequestId>{r31});
  engine.complete(6, r31);
  EXPECT_TRUE(engine.is_satisfied(m21));
  // Mixed satisfaction: l_a, l_b read locked; l_c write locked.
  EXPECT_EQ(engine.read_holders(kLa), std::vector<RequestId>{m21});
  EXPECT_EQ(engine.read_holders(kLb), std::vector<RequestId>{m21});
  EXPECT_EQ(engine.write_holder(kLc), m21);

  // t=7: R^r_{5,1} for {l_a, l_b} does not conflict with the mixed request
  // (both only read l_a, l_b) => satisfied immediately.
  const RequestId r51 = engine.issue_read(7, ResourceSet(3, {kLa, kLb}));
  EXPECT_TRUE(engine.is_satisfied(r51));
  EXPECT_EQ(engine.read_holders(kLa).size(), 2u);

  engine.complete(10, m21);
  engine.complete(12, r51);
}

}  // namespace
}  // namespace rwrnlp::rsm
