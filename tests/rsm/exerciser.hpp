// Randomized protocol exerciser shared by the RSM property tests.
//
// Drives an Engine the way a compliant progress mechanism would (Properties
// P1 and P2 of Sec. 3.1): at most `m` requests are incomplete at any time
// (P2), and every satisfied request completes within its critical-section
// length, which is bounded by L^r_max / L^w_max (P1: resource holders are
// always scheduled).  Under these rules, Theorems 1 and 2 must hold for the
// measured acquisition delays — the tests assert exactly that.
#pragma once

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "rsm/engine.hpp"
#include "rsm/invariants.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace rwrnlp::rsm::testing {

struct ExerciserConfig {
  std::uint64_t seed = 1;
  std::size_t m = 4;          // processors (P2 cap on incomplete requests)
  std::size_t q = 5;          // resources
  std::size_t steps = 400;    // number of issuances
  double read_prob = 0.5;     // probability that a request is a read
  double mixed_prob = 0.0;    // probability that a write is mixed
  std::size_t max_req_size = 3;
  double l_read = 2.0;        // L^r_max
  double l_write = 3.0;       // L^w_max
  WriteExpansion expansion = WriteExpansion::ExpandDomain;
  std::size_t num_patterns = 6;  // read-set patterns declared up front
};

struct ExerciserResult {
  std::size_t reads_issued = 0;
  std::size_t writes_issued = 0;
  double max_read_delay = 0;
  double max_write_delay = 0;
  std::size_t invocations = 0;
};

class Exerciser {
 public:
  explicit Exerciser(const ExerciserConfig& cfg) : cfg_(cfg), rng_(cfg.seed) {
    // Pre-declare every read-set pattern the run may use (the a-priori
    // knowledge the protocol requires, Sec. 3.2 / 3.7).
    ReadShareTable shares(cfg_.q);
    for (std::size_t i = 0; i < cfg_.num_patterns; ++i) {
      patterns_.push_back(random_set());
      shares.declare_read_request(patterns_.back());
    }
    if (cfg_.mixed_prob > 0) {
      for (std::size_t i = 0; i < cfg_.num_patterns; ++i) {
        ResourceSet reads = random_set();
        ResourceSet writes = random_set();
        writes -= reads;
        if (writes.empty()) writes.set(static_cast<ResourceId>(
            rng_.next_below(cfg_.q)));
        shares.declare_mixed_request(reads, writes);
        mixed_patterns_.emplace_back(reads, writes);
      }
    }
    EngineOptions opt;
    opt.expansion = cfg_.expansion;
    opt.validate = true;
    engine_ = std::make_unique<Engine>(cfg_.q, shares, opt);
    observer_ = std::make_unique<ProtocolObserver>(*engine_, observer_opts());
    engine_->set_satisfied_callback([this](RequestId id, Time t) {
      on_satisfied(id, t);
    });
  }

  ExerciserResult run() {
    std::size_t issued = 0;
    while (issued < cfg_.steps || !live_.empty()) {
      const bool can_issue = issued < cfg_.steps && live_.size() < cfg_.m;
      if (can_issue) {
        // P1 discipline: every scheduled completion that falls before the
        // next issuance instant must be processed first — otherwise a
        // critical section would silently run longer than L^r/L^w and the
        // premises of Theorems 1/2 would not hold.
        const double t_next = now_ + rng_.uniform(0.01, 0.8);
        while (!completions_.empty() &&
               completions_.begin()->first <= t_next) {
          process_next_completion();
        }
        now_ = std::max(now_, t_next);
        issue_one(now_);
        ++issued;
      } else {
        // Slots full (P2) or issuance budget spent: the protocol guarantees
        // progress, so a completion must be pending.
        RWRNLP_CHECK_MSG(!completions_.empty(),
                         "no progress: live requests but none satisfied");
        process_next_completion();
      }
    }
    result_.invocations = observer_->invocations();
    return result_;
  }

  const Engine& engine() const { return *engine_; }

 private:
  static ObserverOptions observer_opts() { return ObserverOptions{}; }

  void process_next_completion() {
    const auto it = completions_.begin();
    now_ = std::max(now_, it->first) + 1e-9;
    const RequestId id = it->second;
    completions_.erase(it);
    const bool was_write = engine_->request(id).is_write;
    engine_->complete(now_, id);
    observer_->after_invocation(was_write ? InvocationKind::WriteComplete
                                          : InvocationKind::ReadComplete);
    live_.erase(std::find(live_.begin(), live_.end(), id));
  }

  ResourceSet random_set() {
    const std::size_t size =
        1 + rng_.next_below(std::min(cfg_.max_req_size, cfg_.q));
    ResourceSet s(cfg_.q);
    for (std::size_t idx : rng_.sample_indices(cfg_.q, size))
      s.set(static_cast<ResourceId>(idx));
    return s;
  }

  void issue_one(double t) {
    if (rng_.chance(cfg_.read_prob)) {
      // Reads reuse the declared patterns (or subsets thereof) so that the
      // read-share table really covers everything in flight.
      const ResourceSet& pat =
          patterns_[rng_.next_below(patterns_.size())];
      ResourceSet reads = pat;
      const RequestId id = engine_->issue_read(t, reads);
      observer_->after_invocation(InvocationKind::ReadIssue);
      live_.push_back(id);
      cs_len_[id] = rng_.uniform(0.1, cfg_.l_read);
      ++result_.reads_issued;
      if (engine_->is_satisfied(id)) schedule_completion(id);
    } else if (!mixed_patterns_.empty() && rng_.chance(cfg_.mixed_prob)) {
      const auto& [reads, writes] =
          mixed_patterns_[rng_.next_below(mixed_patterns_.size())];
      const RequestId id = engine_->issue_mixed(t, reads, writes);
      observer_->after_invocation(InvocationKind::WriteIssue);
      live_.push_back(id);
      cs_len_[id] = rng_.uniform(0.1, cfg_.l_write);
      ++result_.writes_issued;
      if (engine_->is_satisfied(id)) schedule_completion(id);
    } else {
      const RequestId id = engine_->issue_write(t, random_set());
      observer_->after_invocation(InvocationKind::WriteIssue);
      live_.push_back(id);
      cs_len_[id] = rng_.uniform(0.1, cfg_.l_write);
      ++result_.writes_issued;
      if (engine_->is_satisfied(id)) schedule_completion(id);
    }
  }

  void on_satisfied(RequestId id, Time t) {
    const Request& r = engine_->request(id);
    const double delay = t - r.issue_time;
    if (r.is_write) {
      result_.max_write_delay = std::max(result_.max_write_delay, delay);
    } else {
      result_.max_read_delay = std::max(result_.max_read_delay, delay);
    }
    // Satisfaction during issuance happens before issue_one() has drawn the
    // critical-section length; in that case issue_one() schedules the
    // completion itself.
    if (cs_len_.count(id) != 0) schedule_completion(id);
  }

  void schedule_completion(RequestId id) {
    const Request& r = engine_->request(id);
    completions_.emplace(r.satisfied_time + cs_len_[id], id);
  }

  ExerciserConfig cfg_;
  Rng rng_;
  std::vector<ResourceSet> patterns_;
  std::vector<std::pair<ResourceSet, ResourceSet>> mixed_patterns_;
  std::unique_ptr<Engine> engine_;
  std::unique_ptr<ProtocolObserver> observer_;
  std::vector<RequestId> live_;
  std::multimap<double, RequestId> completions_;
  std::map<RequestId, double> cs_len_;
  ExerciserResult result_;
  double now_ = 0;
};

}  // namespace rwrnlp::rsm::testing
