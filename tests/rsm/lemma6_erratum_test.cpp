// Lemma 6 erratum: the earliest-timestamped incomplete write request is NOT
// always entitled or satisfied, contrary to the paper's literal statement.
//
// The four-invocation counterexample (pure reads/writes, no placeholders,
// no cancellation, no mixing):
//
//   ts1  W_a = write{l3}    satisfied immediately, holds l3
//   ts2  W_1 = write{l3}    queued behind W_a in WQ(l3)
//   ts3  W_b = write{l2}    satisfied immediately, holds l2
//   ts4  R   = read{l2,l3}  blocked by satisfied writes on both resources;
//                           WQ(l3)'s head W_1 is not entitled (l3 locked),
//                           so Def. 3 makes R ENTITLED
//
// When W_a completes, W_1 becomes the earliest incomplete write, at the
// head of WQ(l3) with l3 unlocked — yet the entitled R (a LATER timestamp)
// suppresses Def. 4(b), leaving W_1 merely Waiting.  No protocol choice
// rescues the naive lemma here: entitling W_1 would create a conflicting
// entitled pair (Property E10), and satisfying W_1 would stretch R's wait
// across two full write phases (breaking Thm. 1) while growing an entitled
// request's blocker set (breaking Cor. 2).  The deferral is bounded — R is
// blocked only by satisfied writes, so it resolves within one write phase
// plus one read phase — which is all Thm. 2's accounting needs.
//
// These tests pin (a) the counterexample itself, step by step, under the
// full ProtocolObserver (whose Lemma 6 check accepts exactly this
// deferral), and (b) the resolution: once the deferring read drains, the
// earliest write is promoted and every request completes.
#include <gtest/gtest.h>

#include "rsm/engine.hpp"
#include "rsm/invariants.hpp"

namespace rwrnlp::rsm {
namespace {

class Lemma6ErratumTest : public ::testing::TestWithParam<WriteExpansion> {};

TEST_P(Lemma6ErratumTest, EarliestWriteDeferredByLaterEntitledRead) {
  EngineOptions opt;
  opt.expansion = GetParam();
  opt.validate = true;
  Engine e(4, opt);
  ProtocolObserver obs(e);

  const RequestId wa = e.issue_write(1, ResourceSet(4, {3}));
  obs.after_invocation(InvocationKind::WriteIssue);
  EXPECT_TRUE(e.is_satisfied(wa));

  const RequestId w1 = e.issue_write(2, ResourceSet(4, {3}));
  obs.after_invocation(InvocationKind::WriteIssue);
  EXPECT_EQ(e.state(w1), RequestState::Waiting);

  const RequestId wb = e.issue_write(3, ResourceSet(4, {2}));
  obs.after_invocation(InvocationKind::WriteIssue);
  EXPECT_TRUE(e.is_satisfied(wb));

  const RequestId r = e.issue_read(4, ResourceSet(4, {2, 3}));
  obs.after_invocation(InvocationKind::ReadIssue);
  EXPECT_EQ(e.state(r), RequestState::Entitled);

  // The erratum moment: W_a completes, leaving w1 the earliest incomplete
  // write — at the head of WQ(l3), nothing write-locked in its domain —
  // and STILL merely waiting, because the later-timestamped entitled read
  // suppresses Def. 4(b).  The observer's corrected Lemma 6 accepts this
  // (and only this) deferral.
  e.complete(5, wa);
  obs.after_invocation(InvocationKind::WriteComplete);
  EXPECT_EQ(e.state(w1), RequestState::Waiting);
  EXPECT_EQ(e.state(r), RequestState::Entitled);
  ASSERT_FALSE(e.write_queue(3).empty());
  EXPECT_EQ(e.write_queue(3).front().req, w1);
  EXPECT_FALSE(e.write_holder(3).has_value());

  // Resolution, phase-fair: the read goes first (Thm. 1's single write
  // phase of waiting), then the deferred write is promoted.
  e.complete(6, wb);
  obs.after_invocation(InvocationKind::WriteComplete);
  EXPECT_TRUE(e.is_satisfied(r));
  // The deferral ends the moment r stops being *entitled*: Def. 4(b) no
  // longer applies, so w1 is entitled at once (blocked only by the read
  // holder r), exactly as Cor. 2 demands.
  EXPECT_EQ(e.state(w1), RequestState::Entitled);

  e.complete(7, r);
  obs.after_invocation(InvocationKind::ReadComplete);
  EXPECT_TRUE(e.is_satisfied(w1));

  e.complete(8, w1);
  obs.after_invocation(InvocationKind::WriteComplete);
  EXPECT_EQ(e.incomplete_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(BothExpansions, Lemma6ErratumTest,
                         ::testing::Values(WriteExpansion::ExpandDomain,
                                           WriteExpansion::Placeholders));

}  // namespace
}  // namespace rwrnlp::rsm
