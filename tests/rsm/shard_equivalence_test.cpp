// Proves component sharding is exact, not approximate: on workloads whose
// requests each stay inside one resource component (with a read-share
// relation that respects the partition), one global engine and a set of
// per-component engines produce byte-identical trace event sequences — same
// transitions, same satisfaction order, same timestamps.  This is the
// executable counterpart of the decomposition argument in DESIGN.md
// §"Hot-path engineering" that lets ShardedRwRnlp inherit the per-component
// Thm. 1/Thm. 2 bounds verbatim.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "rsm/engine.hpp"
#include "util/rng.hpp"

namespace rwrnlp::rsm {
namespace {

constexpr std::size_t kQ = 12;
constexpr std::size_t kComponents = 3;
constexpr std::size_t kCompSize = kQ / kComponents;

EngineOptions traced_options(WriteExpansion expansion) {
  EngineOptions o;
  o.expansion = expansion;
  o.validate = true;
  o.record_trace = true;
  return o;
}

/// A read-share relation that respects the partition: within each component,
/// the first two resources are read shared.
ReadShareTable partitioned_shares() {
  ReadShareTable shares(kQ);
  for (std::size_t c = 0; c < kComponents; ++c) {
    const ResourceId base = static_cast<ResourceId>(c * kCompSize);
    shares.declare_read_request(
        ResourceSet(kQ, {base, static_cast<ResourceId>(base + 1)}));
  }
  return shares;
}

ResourceSet random_component_set(Rng& rng, std::size_t comp,
                                 std::size_t max_size) {
  const ResourceId base = static_cast<ResourceId>(comp * kCompSize);
  ResourceSet rs(kQ);
  const std::size_t n = 1 + rng.next_below(max_size);
  for (std::size_t i = 0; i < n; ++i)
    rs.set(base + static_cast<ResourceId>(rng.next_below(kCompSize)));
  return rs;
}

class ShardEquivalence : public ::testing::TestWithParam<WriteExpansion> {};

TEST_P(ShardEquivalence, GlobalAndPerComponentTracesAreByteIdentical) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    Engine global(kQ, partitioned_shares(), traced_options(GetParam()));
    std::vector<Engine> shards;
    for (std::size_t c = 0; c < kComponents; ++c)
      shards.emplace_back(kQ, partitioned_shares(), traced_options(GetParam()));

    Rng rng(seed);
    struct LiveReq {
      RequestId global_id;
      RequestId shard_id;
      std::size_t comp;
    };
    std::vector<LiveReq> live;
    std::map<RequestId, RequestId> shard_to_global[kComponents];
    std::map<RequestId, std::size_t> global_comp;

    Time t = 0;
    auto record_pair = [&](RequestId gid, RequestId sid, std::size_t comp) {
      live.push_back({gid, sid, comp});
      shard_to_global[comp][sid] = gid;
      global_comp[gid] = comp;
    };

    for (int op = 0; op < 250; ++op) {
      t += 1.0;
      const std::size_t comp = rng.next_below(kComponents);
      const std::uint64_t kind = rng.next_below(8);
      if (kind < 4) {  // read
        const ResourceSet rs = random_component_set(rng, comp, 3);
        record_pair(global.issue_read(t, rs), shards[comp].issue_read(t, rs),
                    comp);
      } else if (kind < 6) {  // write
        const ResourceSet rs = random_component_set(rng, comp, 2);
        record_pair(global.issue_write(t, rs),
                    shards[comp].issue_write(t, rs), comp);
      } else if (!live.empty()) {  // complete a random satisfied request
        const std::size_t pick = rng.next_below(live.size());
        const LiveReq lr = live[pick];
        if (global.is_satisfied(lr.global_id)) {
          ASSERT_TRUE(shards[lr.comp].is_satisfied(lr.shard_id));
          global.complete(t, lr.global_id);
          shards[lr.comp].complete(t, lr.shard_id);
          live.erase(live.begin() + pick);
        }
      }
    }
    while (!live.empty()) {
      t += 1.0;
      bool progressed = false;
      for (std::size_t i = 0; i < live.size(); ++i) {
        if (global.is_satisfied(live[i].global_id)) {
          shards[live[i].comp].complete(t, live[i].shard_id);
          global.complete(t, live[i].global_id);
          live.erase(live.begin() + i);
          progressed = true;
          break;
        }
      }
      ASSERT_TRUE(progressed) << "deadlock in replay, seed " << seed;
    }

    // Per component: the global trace filtered to that component's requests
    // must equal the shard's trace with request ids mapped back to global
    // numbering — compared byte-for-byte after formatting.
    for (std::size_t c = 0; c < kComponents; ++c) {
      std::vector<TraceEvent> global_filtered;
      for (const TraceEvent& e : global.trace())
        if (global_comp.at(e.request) == c) global_filtered.push_back(e);
      std::vector<TraceEvent> shard_mapped = shards[c].trace();
      for (TraceEvent& e : shard_mapped)
        e.request = shard_to_global[c].at(e.request);
      EXPECT_EQ(format_trace(global_filtered), format_trace(shard_mapped))
          << "component " << c << " diverged at seed " << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BothExpansionModes, ShardEquivalence,
                         ::testing::Values(WriteExpansion::ExpandDomain,
                                           WriteExpansion::Placeholders));

}  // namespace
}  // namespace rwrnlp::rsm
