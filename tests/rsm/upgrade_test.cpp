// Tests for read-to-write upgrading (Sec. 3.6).
#include <gtest/gtest.h>

#include "rsm/engine.hpp"
#include "rsm/invariants.hpp"

namespace rwrnlp::rsm {
namespace {

EngineOptions validated(WriteExpansion x = WriteExpansion::ExpandDomain) {
  EngineOptions o;
  o.expansion = x;
  o.validate = true;
  return o;
}

TEST(Upgrade, ReadHalfRunsOptimisticallyInIdleSystem) {
  Engine e(2, validated());
  const auto pair = e.issue_upgradeable(1, ResourceSet(2, {0, 1}));
  EXPECT_TRUE(e.is_satisfied(pair.read_part));
  // The write half queues behind its own partner's read locks.
  EXPECT_NE(e.state(pair.write_part), RequestState::Satisfied);
  EXPECT_TRUE(e.read_locked(0));
  EXPECT_FALSE(e.write_locked(0));
}

TEST(Upgrade, NoUpgradeCancelsWriteHalf) {
  Engine e(2, validated());
  const auto pair = e.issue_upgradeable(1, ResourceSet(2, {0, 1}));
  ASSERT_TRUE(e.is_satisfied(pair.read_part));
  e.finish_read_segment(2, pair, /*upgrade=*/false);
  EXPECT_EQ(e.state(pair.read_part), RequestState::Complete);
  EXPECT_EQ(e.state(pair.write_part), RequestState::Canceled);
  EXPECT_FALSE(e.read_locked(0));
  EXPECT_TRUE(e.write_queue(0).empty());
  EXPECT_TRUE(e.write_queue(1).empty());
}

TEST(Upgrade, UpgradePathAcquiresWriteLocks) {
  Engine e(2, validated());
  const auto pair = e.issue_upgradeable(1, ResourceSet(2, {0, 1}));
  ASSERT_TRUE(e.is_satisfied(pair.read_part));
  e.finish_read_segment(2, pair, /*upgrade=*/true);
  EXPECT_EQ(e.state(pair.read_part), RequestState::Complete);
  // With nothing else in the system, the write half is satisfied at the same
  // invocation the read locks are dropped.
  EXPECT_TRUE(e.is_satisfied(pair.write_part));
  EXPECT_EQ(e.write_holder(0), pair.write_part);
  EXPECT_EQ(e.write_holder(1), pair.write_part);
  e.complete(3, pair.write_part);
  EXPECT_FALSE(e.write_locked(0));
}

TEST(Upgrade, UpgradeWaitsForConcurrentReaders) {
  // A pre-existing reader shares the resource with the optimistic segment;
  // the upgrade must wait for it (the data may change in between — the
  // paper warns re-reads may be necessary, which is the application's
  // business).
  Engine e(1, validated());
  const RequestId r2 = e.issue_read(1, ResourceSet(1, {0}));
  ASSERT_TRUE(e.is_satisfied(r2));
  const auto pair = e.issue_upgradeable(2, ResourceSet(1, {0}));
  ASSERT_TRUE(e.is_satisfied(pair.read_part));  // joins the read phase

  e.finish_read_segment(3, pair, /*upgrade=*/true);
  EXPECT_EQ(e.state(pair.write_part), RequestState::Entitled);
  EXPECT_EQ(e.blockers(pair.write_part), std::vector<RequestId>{r2});
  e.complete(4, r2);
  EXPECT_TRUE(e.is_satisfied(pair.write_part));
  e.complete(5, pair.write_part);
}

TEST(Upgrade, ReadHalfEntitledBehindWriteHolderWinsFirst) {
  // The upgradeable pair is issued while a writer holds l0: the read half
  // becomes entitled (Def. 3 — blocked by a satisfied writer, and the queue
  // head, its own write half, is not entitled) and wins the next phase, so
  // optimism is preserved even under contention.
  Engine e(1, validated());
  const RequestId w0 = e.issue_write(1, ResourceSet(1, {0}));
  const auto pair = e.issue_upgradeable(2, ResourceSet(1, {0}));
  EXPECT_EQ(e.state(pair.read_part), RequestState::Entitled);
  EXPECT_EQ(e.state(pair.write_part), RequestState::Waiting);
  e.complete(3, w0);
  EXPECT_TRUE(e.is_satisfied(pair.read_part));
  EXPECT_NE(e.state(pair.write_part), RequestState::Satisfied);
  e.finish_read_segment(4, pair, /*upgrade=*/false);
}

TEST(Upgrade, ReadHalfWinsEvenBehindAnEntitledWriter) {
  // Once the entitled writer ahead of the pair is *satisfied* (and thus
  // write-locks the resource), Def. 3 entitles the read half — so the read
  // half still runs first when the writer's phase ends.  Whenever a
  // conflicting writer is satisfied, the optimistic half wins.
  Engine e(1, validated());
  const RequestId r0 = e.issue_read(1, ResourceSet(1, {0}));
  const RequestId w0 = e.issue_write(2, ResourceSet(1, {0}));
  ASSERT_EQ(e.state(w0), RequestState::Entitled);
  const auto pair = e.issue_upgradeable(3, ResourceSet(1, {0}));
  EXPECT_EQ(e.state(pair.read_part), RequestState::Waiting);
  EXPECT_EQ(e.state(pair.write_part), RequestState::Waiting);
  e.complete(4, r0);
  ASSERT_TRUE(e.is_satisfied(w0));
  EXPECT_EQ(e.state(pair.read_part), RequestState::Entitled);
  e.complete(5, w0);
  EXPECT_TRUE(e.is_satisfied(pair.read_part));
  e.finish_read_segment(6, pair, /*upgrade=*/false);
}

TEST(Upgrade, WriteHalfWinsWhenBlockingWriterCancels) {
  // Sec. 3.6: "If R^{u_w} is satisfied before R^{u_r}, then R^{u_r} is
  // canceled."  Under Defs. 3/4 this is reachable when the entitled writer
  // blocking the pair *cancels* instead of being satisfied (here: another
  // upgrade pair abandons its write half), so no resource is ever write
  // locked and the read half can never become entitled (Def. 3(a)); the
  // write half then wins the race when the last read holder completes.
  Engine e(1, validated());
  const RequestId r_c = e.issue_read(1, ResourceSet(1, {0}));
  const auto pair_a = e.issue_upgradeable(2, ResourceSet(1, {0}));
  ASSERT_TRUE(e.is_satisfied(pair_a.read_part));
  ASSERT_EQ(e.state(pair_a.write_part), RequestState::Entitled);

  const auto pair_b = e.issue_upgradeable(3, ResourceSet(1, {0}));
  EXPECT_EQ(e.state(pair_b.read_part), RequestState::Waiting);
  EXPECT_EQ(e.state(pair_b.write_part), RequestState::Waiting);

  // Pair A abandons its upgrade: its write half cancels, B's write half
  // becomes entitled while B's read half is still merely waiting.
  e.finish_read_segment(4, pair_a, /*upgrade=*/false);
  EXPECT_EQ(e.state(pair_b.write_part), RequestState::Entitled);
  EXPECT_EQ(e.state(pair_b.read_part), RequestState::Waiting);

  // The last read holder completes: B's write half is satisfied and its
  // read half canceled.
  e.complete(5, r_c);
  EXPECT_TRUE(e.is_satisfied(pair_b.write_part));
  EXPECT_EQ(e.state(pair_b.read_part), RequestState::Canceled);
  EXPECT_TRUE(e.read_queue(0).empty());
  e.complete(6, pair_b.write_part);
}

TEST(Upgrade, ReadHalfWinsAgainstQueuedWriterWhenNotBlocked) {
  // Upgradeable issued into an idle resource, then a writer arrives: the
  // read half already holds its locks, the partner write half is ahead of
  // the newcomer in the write queue.
  Engine e(1, validated());
  const auto pair = e.issue_upgradeable(1, ResourceSet(1, {0}));
  ASSERT_TRUE(e.is_satisfied(pair.read_part));
  const RequestId w = e.issue_write(2, ResourceSet(1, {0}));
  EXPECT_EQ(e.state(w), RequestState::Waiting);
  // Upgrade: our write half beats w (earlier timestamp).
  e.finish_read_segment(3, pair, /*upgrade=*/true);
  EXPECT_TRUE(e.is_satisfied(pair.write_part));
  EXPECT_EQ(e.state(w), RequestState::Waiting);
  e.complete(4, pair.write_part);
  EXPECT_TRUE(e.is_satisfied(w));
  e.complete(5, w);
}

TEST(Upgrade, AbandonedUpgradeUnblocksQueuedWriter) {
  Engine e(1, validated());
  const auto pair = e.issue_upgradeable(1, ResourceSet(1, {0}));
  const RequestId w = e.issue_write(2, ResourceSet(1, {0}));
  ASSERT_EQ(e.state(w), RequestState::Waiting);
  e.finish_read_segment(3, pair, /*upgrade=*/false);
  EXPECT_TRUE(e.is_satisfied(w));
  e.complete(4, w);
}

TEST(Upgrade, EntitledWriteHalfBlocksNewReaders) {
  // While the read half holds its locks and the write half is entitled,
  // newly issued conflicting readers must wait (writer-in-waiting blocks the
  // next read phase) — this is what gives upgrades write-grade worst-case
  // blocking but no worse.
  Engine e(1, validated());
  const auto pair = e.issue_upgradeable(1, ResourceSet(1, {0}));
  ASSERT_TRUE(e.is_satisfied(pair.read_part));
  ASSERT_EQ(e.state(pair.write_part), RequestState::Entitled);
  const RequestId r2 = e.issue_read(2, ResourceSet(1, {0}));
  EXPECT_EQ(e.state(r2), RequestState::Waiting);
  e.finish_read_segment(3, pair, /*upgrade=*/true);
  ASSERT_TRUE(e.is_satisfied(pair.write_part));
  e.complete(4, pair.write_part);
  EXPECT_TRUE(e.is_satisfied(r2));
  e.complete(5, r2);
}

TEST(Upgrade, WorksWithPlaceholdersAndReadShares) {
  // Upgradeable request over {l0}; l0 ~ l1, so the write half enqueues a
  // placeholder in WQ(l1) (placeholder mode) until it is entitled.
  ReadShareTable shares(2);
  shares.declare_read_request(ResourceSet(2, {0, 1}));
  Engine e(2, shares, validated(WriteExpansion::Placeholders));
  const RequestId r_other = e.issue_read(1, ResourceSet(2, {0}));
  const auto pair = e.issue_upgradeable(2, ResourceSet(2, {0}));
  // Read half shares l0 with r_other.
  EXPECT_TRUE(e.is_satisfied(pair.read_part));
  // Write half is entitled (blocked by the two read holders); its
  // placeholder on l1 is gone (removed at entitlement).
  EXPECT_EQ(e.state(pair.write_part), RequestState::Entitled);
  EXPECT_TRUE(e.write_queue(1).empty());
  e.complete(3, r_other);
  e.finish_read_segment(4, pair, /*upgrade=*/true);
  EXPECT_TRUE(e.is_satisfied(pair.write_part));
  EXPECT_TRUE(e.write_locked(0));
  EXPECT_FALSE(e.write_locked(1));  // placeholder never locks
  e.complete(5, pair.write_part);
}

TEST(Upgrade, CompleteOnReadHalfWithLiveWriteHalfIsRejected) {
  Engine e(1, validated());
  const auto pair = e.issue_upgradeable(1, ResourceSet(1, {0}));
  ASSERT_TRUE(e.is_satisfied(pair.read_part));
  EXPECT_THROW(e.complete(2, pair.read_part), std::invalid_argument);
  e.finish_read_segment(3, pair, false);
}

TEST(Upgrade, AbandonedPairSlotsAreFreedExactlyOnce) {
  // Regression: finish_read_segment(abandon) recycles both halves through
  // two maybe_recycle calls; the read slot must not enter the free list
  // twice or two later requests would share a slot.
  EngineOptions o;
  o.retain_history = false;
  Engine e(2, o);
  const auto pair = e.issue_upgradeable(1, ResourceSet(2, {0}));
  e.finish_read_segment(2, pair, /*upgrade=*/false);
  const RequestId a = e.issue_write(3, ResourceSet(2, {0}));
  const RequestId b = e.issue_write(4, ResourceSet(2, {1}));
  EXPECT_NE(a, b);  // distinct slots despite recycling
  EXPECT_TRUE(e.is_satisfied(a));
  EXPECT_TRUE(e.is_satisfied(b));
  e.complete(5, a);
  e.complete(6, b);
}

TEST(Upgrade, PairSlotsRecycleTogetherWithoutHistory) {
  EngineOptions o;
  o.retain_history = false;
  Engine e(1, o);
  const auto p1 = e.issue_upgradeable(1, ResourceSet(1, {0}));
  e.finish_read_segment(2, p1, true);
  e.complete(3, p1.write_part);
  const auto p2 = e.issue_upgradeable(4, ResourceSet(1, {0}));
  // Both slots were freed; the new pair reuses them.
  EXPECT_TRUE((p2.read_part == p1.read_part && p2.write_part == p1.write_part) ||
              (p2.read_part == p1.write_part && p2.write_part == p1.read_part));
  e.finish_read_segment(5, p2, false);
}

}  // namespace
}  // namespace rwrnlp::rsm
