// Tests for the ProtocolObserver itself: the checker must flag sequences
// that violate the Lemma 2 properties.  Since the engine never produces
// such sequences, we feed the observer *mislabeled* invocation kinds — from
// its perspective indistinguishable from a buggy protocol — and expect it
// to throw.
#include <gtest/gtest.h>

#include "rsm/engine.hpp"
#include "rsm/invariants.hpp"
#include "util/assert.hpp"

namespace rwrnlp::rsm {
namespace {

TEST(Observer, FlagsE9WhenWriteEntitledByAllegedReadInvocation) {
  Engine e(1, EngineOptions{});
  ProtocolObserver obs(e);
  const RequestId r = e.issue_read(1, ResourceSet(1, {0}));
  obs.after_invocation(InvocationKind::ReadIssue);
  // A write is issued and becomes entitled — but we claim the invocation
  // was a read issuance: E9 must fire.
  e.issue_write(2, ResourceSet(1, {0}));
  EXPECT_THROW(obs.after_invocation(InvocationKind::ReadIssue),
               InvariantViolation);
  (void)r;
}

TEST(Observer, FlagsE1WhenReadSatisfiedByAllegedWriteIssuance) {
  Engine e(1, EngineOptions{});
  ProtocolObserver obs(e);
  // Read satisfied at issuance, mislabeled as a write issuance: E1 allows
  // read satisfaction only at read issuance or write completion.
  e.issue_read(1, ResourceSet(1, {0}));
  EXPECT_THROW(obs.after_invocation(InvocationKind::WriteIssue),
               InvariantViolation);
}

TEST(Observer, FlagsE3WhenPreexistingReadSatisfiedAtReadIssuance) {
  Engine e(1, EngineOptions{});
  ProtocolObserver obs(e);
  const RequestId r1 = e.issue_read(1, ResourceSet(1, {0}));
  obs.after_invocation(InvocationKind::ReadIssue);
  const RequestId w = e.issue_write(2, ResourceSet(1, {0}));
  obs.after_invocation(InvocationKind::WriteIssue);
  const RequestId r2 = e.issue_read(3, ResourceSet(1, {0}));
  obs.after_invocation(InvocationKind::ReadIssue);
  ASSERT_EQ(e.state(r2), RequestState::Waiting);
  // r1 completes; w is satisfied.  Mislabel the invocation as a read
  // *issuance*: the state change "w newly satisfied" then violates E2/E4
  // (a pre-existing write satisfied by an alleged read issuance).
  e.complete(4, r1);
  EXPECT_THROW(obs.after_invocation(InvocationKind::ReadIssue),
               InvariantViolation);
  (void)w;
}

TEST(Observer, MixedKindSkipsEPropertyChecks) {
  // The same mislabeling with kind=Mixed must NOT throw (extensions bend
  // E1-E9 legitimately, so Mixed disables those checks).
  Engine e(1, EngineOptions{});
  ProtocolObserver obs(e);
  e.issue_read(1, ResourceSet(1, {0}));
  EXPECT_NO_THROW(obs.after_invocation(InvocationKind::Mixed));
}

TEST(Observer, OptionsDisableChecks) {
  ObserverOptions opt;
  opt.check_e_properties = false;
  Engine e(1, EngineOptions{});
  ProtocolObserver obs(e, opt);
  e.issue_read(1, ResourceSet(1, {0}));
  EXPECT_NO_THROW(obs.after_invocation(InvocationKind::WriteIssue));
}

TEST(Observer, CountsInvocations) {
  Engine e(1, EngineOptions{});
  ProtocolObserver obs(e);
  const RequestId r = e.issue_read(1, ResourceSet(1, {0}));
  obs.after_invocation(InvocationKind::ReadIssue);
  e.complete(2, r);
  obs.after_invocation(InvocationKind::ReadComplete);
  EXPECT_EQ(obs.invocations(), 2u);
}

TEST(Observer, CleanSequencesPass) {
  Engine e(2, EngineOptions{});
  ProtocolObserver obs(e);
  const RequestId r = e.issue_read(1, ResourceSet(2, {0}));
  obs.after_invocation(InvocationKind::ReadIssue);
  const RequestId w = e.issue_write(2, ResourceSet(2, {0, 1}));
  obs.after_invocation(InvocationKind::WriteIssue);
  e.complete(3, r);
  obs.after_invocation(InvocationKind::ReadComplete);
  e.complete(4, w);
  obs.after_invocation(InvocationKind::WriteComplete);
  EXPECT_EQ(obs.invocations(), 4u);
}

}  // namespace
}  // namespace rwrnlp::rsm
