// API-misuse and edge-case tests: every invalid call must be rejected with
// std::invalid_argument and must leave the engine in a usable state.
#include <gtest/gtest.h>

#include "rsm/engine.hpp"

namespace rwrnlp::rsm {
namespace {

EngineOptions validated() {
  EngineOptions o;
  o.validate = true;
  return o;
}

TEST(ApiRobustness, EmptyRequestsRejected) {
  Engine e(3, validated());
  EXPECT_THROW(e.issue_read(1, ResourceSet(3)), std::invalid_argument);
  EXPECT_THROW(e.issue_write(1, ResourceSet(3)), std::invalid_argument);
  EXPECT_THROW(e.issue_mixed(1, ResourceSet(3, {0}), ResourceSet(3)),
               std::invalid_argument);
  EXPECT_THROW(e.issue_upgradeable(1, ResourceSet(3)),
               std::invalid_argument);
  EXPECT_THROW(
      e.issue_incremental(1, ResourceSet(3), ResourceSet(3), ResourceSet(3)),
      std::invalid_argument);
  // Engine still works.
  const RequestId id = e.issue_write(2, ResourceSet(3, {0}));
  e.complete(3, id);
}

TEST(ApiRobustness, MismatchedShareTableRejected) {
  ReadShareTable shares(2);
  EXPECT_THROW(Engine(3, shares, validated()), std::invalid_argument);
}

TEST(ApiRobustness, TimeMustNotGoBackwards) {
  Engine e(1, validated());
  const RequestId a = e.issue_write(5, ResourceSet(1, {0}));
  EXPECT_THROW(e.issue_write(4.9, ResourceSet(1, {0})),
               std::invalid_argument);
  EXPECT_THROW(e.complete(4.9, a), std::invalid_argument);
  e.complete(5, a);  // equal times are fine (total order via sequence)
}

TEST(ApiRobustness, BadRequestIdsRejected) {
  Engine e(1, validated());
  EXPECT_THROW(e.complete(1, 42), std::invalid_argument);
  EXPECT_THROW(e.request(7), std::invalid_argument);
  EXPECT_THROW(e.blockers(7), std::invalid_argument);
}

TEST(ApiRobustness, DoubleCompleteRejected) {
  Engine e(1, validated());
  const RequestId a = e.issue_write(1, ResourceSet(1, {0}));
  e.complete(2, a);
  EXPECT_THROW(e.complete(3, a), std::invalid_argument);
}

TEST(ApiRobustness, CompleteOfWaitingRequestRejected) {
  Engine e(1, validated());
  const RequestId a = e.issue_write(1, ResourceSet(1, {0}));
  const RequestId b = e.issue_write(2, ResourceSet(1, {0}));
  EXPECT_THROW(e.complete(3, b), std::invalid_argument);
  e.complete(3, a);
  e.complete(4, b);
}

TEST(ApiRobustness, FinishReadSegmentGuards) {
  Engine e(1, validated());
  const auto pair = e.issue_upgradeable(1, ResourceSet(1, {0}));
  // A non-pair id is rejected.
  const RequestId w = e.issue_write(2, ResourceSet(1, {0}));
  UpgradeablePair bogus{w, w};
  EXPECT_THROW(e.finish_read_segment(3, bogus, true),
               std::invalid_argument);
  e.finish_read_segment(3, pair, false);
  // Finishing twice is rejected (read half already complete).
  EXPECT_THROW(e.finish_read_segment(4, pair, false),
               std::invalid_argument);
  e.complete(4, w);
}

TEST(ApiRobustness, RequestMoreGuards) {
  Engine e(2, validated());
  const RequestId plain = e.issue_write(1, ResourceSet(2, {0}));
  EXPECT_THROW(e.request_more(2, plain, ResourceSet(2, {1})),
               std::invalid_argument);  // not incremental
  e.complete(2, plain);
  const RequestId inc = e.issue_incremental(
      3, ResourceSet(2), ResourceSet(2, {0}), ResourceSet(2, {0}));
  EXPECT_THROW(e.request_more(4, inc, ResourceSet(2, {1})),
               std::invalid_argument);  // outside declared set
  e.complete(4, inc);
  EXPECT_THROW(e.request_more(5, inc, ResourceSet(2, {0})),
               std::invalid_argument);  // finished
}

TEST(ApiRobustness, ResourceIndexOutOfRangeRejected) {
  Engine e(2, validated());
  EXPECT_THROW(e.issue_read(1, ResourceSet(5, {4})), std::invalid_argument);
  EXPECT_THROW(e.read_queue(9), std::invalid_argument);
  EXPECT_THROW(e.write_queue(9), std::invalid_argument);
  EXPECT_THROW(e.write_holder(9), std::invalid_argument);
}

// --- cancel() edge cases ---------------------------------------------------

TEST(ApiRobustness, CancelOfUnknownIdRejected) {
  Engine e(1, validated());
  EXPECT_THROW(e.cancel(1, 42), std::invalid_argument);
  // Engine still works.
  const RequestId a = e.issue_write(2, ResourceSet(1, {0}));
  e.complete(3, a);
}

TEST(ApiRobustness, DoubleCancelRejected) {
  Engine e(1, validated());
  const RequestId a = e.issue_write(1, ResourceSet(1, {0}));
  const RequestId b = e.issue_write(2, ResourceSet(1, {0}));
  e.cancel(3, b);
  EXPECT_EQ(e.state(b), RequestState::Canceled);
  EXPECT_THROW(e.cancel(4, b), std::invalid_argument);
  e.complete(5, a);
}

TEST(ApiRobustness, CancelAfterSatisfactionRejected) {
  Engine e(1, validated());
  const RequestId a = e.issue_write(1, ResourceSet(1, {0}));
  ASSERT_TRUE(e.is_satisfied(a));
  // A satisfied request holds resources and may have side effects; the only
  // legal exit is complete().
  EXPECT_THROW(e.cancel(2, a), std::invalid_argument);
  EXPECT_TRUE(e.is_satisfied(a));  // unchanged
  e.complete(3, a);
  EXPECT_THROW(e.cancel(4, a), std::invalid_argument);  // complete: same
}

TEST(ApiRobustness, CancelOfQueuedWritePromotesSuccessor) {
  Engine e(1, validated());
  const RequestId a = e.issue_write(1, ResourceSet(1, {0}));
  const RequestId b = e.issue_write(2, ResourceSet(1, {0}));
  const RequestId c = e.issue_write(3, ResourceSet(1, {0}));
  ASSERT_EQ(e.state(b), RequestState::Waiting);
  e.cancel(4, b);
  // b vanished from WQ(0); c slides forward as if b had never been issued.
  EXPECT_EQ(e.state(b), RequestState::Canceled);
  const auto wq = e.write_queue(0);
  ASSERT_EQ(wq.size(), 1u);
  EXPECT_EQ(wq[0].req, c);
  e.complete(5, a);
  EXPECT_TRUE(e.is_satisfied(c));
  e.complete(6, c);
  EXPECT_EQ(e.incomplete_count(), 0u);
}

TEST(ApiRobustness, CancelOfEntitledWriteReadmitsReads) {
  Engine e(1, validated());
  const RequestId r0 = e.issue_read(1, ResourceSet(1, {0}));
  ASSERT_TRUE(e.is_satisfied(r0));
  const RequestId w = e.issue_write(2, ResourceSet(1, {0}));
  ASSERT_EQ(e.state(w), RequestState::Entitled);
  // A later read concedes to the entitled write...
  const RequestId r1 = e.issue_read(3, ResourceSet(1, {0}));
  ASSERT_EQ(e.state(r1), RequestState::Waiting);
  // ...until the write abandons its WQ headship: the fixpoint then admits
  // the read in the same invocation, as if the write had never existed.
  e.cancel(4, w);
  EXPECT_EQ(e.state(w), RequestState::Canceled);
  EXPECT_TRUE(e.is_satisfied(r1));
  e.complete(5, r0);
  e.complete(6, r1);
  EXPECT_EQ(e.incomplete_count(), 0u);
}

TEST(ApiRobustness, CancelOfUpgradeHalfCancelsBothHalves) {
  Engine e(1, validated());
  // Make both halves wait behind a satisfied writer.
  const RequestId w = e.issue_write(1, ResourceSet(1, {0}));
  const auto pair = e.issue_upgradeable(2, ResourceSet(1, {0}));
  ASSERT_FALSE(e.is_satisfied(pair.read_part));
  ASSERT_FALSE(e.is_satisfied(pair.write_part));
  e.cancel(3, pair.read_part);
  EXPECT_EQ(e.state(pair.read_part), RequestState::Canceled);
  EXPECT_EQ(e.state(pair.write_part), RequestState::Canceled);
  e.complete(4, w);
  EXPECT_EQ(e.incomplete_count(), 0u);
}

TEST(ApiRobustness, CancelOfUpgradeHalfWithSatisfiedPartnerRejected) {
  Engine e(1, validated());
  const auto pair = e.issue_upgradeable(1, ResourceSet(1, {0}));
  // Uncontended: the read half is satisfied at issuance, the write half
  // waits behind its read locks.  The pair must resolve via
  // finish_read_segment(), not cancel().
  ASSERT_TRUE(e.is_satisfied(pair.read_part));
  EXPECT_THROW(e.cancel(2, pair.write_part), std::invalid_argument);
  e.finish_read_segment(3, pair, /*upgrade=*/false);
  EXPECT_EQ(e.incomplete_count(), 0u);
}

TEST(ApiRobustness, CancelOfPlaceholderBearingWriterUnderPlaceholders) {
  EngineOptions o;
  o.expansion = WriteExpansion::Placeholders;
  o.validate = true;
  ReadShareTable shares(2);
  shares.declare_read_request(ResourceSet(2, {0, 1}));  // l0 ~ l1
  Engine e(2, shares, o);
  // W0 holds l0; W1 (needs l0) queues with a placeholder on l1; W2 (needs
  // l1) waits behind that placeholder even though l1 is free (Sec. 3.4).
  const RequestId w0 = e.issue_write(1, ResourceSet(2, {0}));
  ASSERT_TRUE(e.is_satisfied(w0));
  const RequestId w1 = e.issue_write(2, ResourceSet(2, {0}));
  ASSERT_EQ(e.state(w1), RequestState::Waiting);
  {
    const auto wq1 = e.write_queue(1);
    ASSERT_EQ(wq1.size(), 1u);
    EXPECT_TRUE(wq1[0].placeholder);
  }
  const RequestId w2 = e.issue_write(3, ResourceSet(2, {1}));
  ASSERT_EQ(e.state(w2), RequestState::Waiting);
  // Canceling W1 must scrub its placeholder from WQ(l1) too — W2 becomes
  // head of a placeholder-free queue and is satisfied by the same
  // invocation's fixpoint.
  e.cancel(4, w1);
  EXPECT_EQ(e.state(w1), RequestState::Canceled);
  EXPECT_TRUE(e.is_satisfied(w2));
  EXPECT_EQ(e.write_queue(0).size(), 0u);
  e.complete(5, w0);
  e.complete(6, w2);
  EXPECT_EQ(e.incomplete_count(), 0u);
}

TEST(ApiRobustness, CancelReleasesIncrementalPartialGrants) {
  Engine e(2, validated());
  // Reader holds l1, so the incremental write (potential {l0,l1}, initial
  // {l0}) becomes entitled and is granted l0 but cannot be satisfied.
  const RequestId r = e.issue_read(1, ResourceSet(2, {1}));
  ASSERT_TRUE(e.is_satisfied(r));
  const RequestId inc = e.issue_incremental(
      2, ResourceSet(2), ResourceSet(2, {0, 1}), ResourceSet(2, {0}));
  e.request_more(3, inc, ResourceSet(2, {1}));
  ASSERT_EQ(e.state(inc), RequestState::Entitled);
  ASSERT_TRUE(e.holds(inc).test(0));  // partial grant
  // Cancel must release the partial grant: a later writer of l0 gets it.
  e.cancel(4, inc);
  EXPECT_EQ(e.state(inc), RequestState::Canceled);
  EXPECT_TRUE(e.holds(inc).empty());
  EXPECT_FALSE(e.write_locked(0));
  const RequestId w = e.issue_write(5, ResourceSet(2, {0}));
  EXPECT_TRUE(e.is_satisfied(w));
  e.complete(6, r);
  e.complete(7, w);
  EXPECT_EQ(e.incomplete_count(), 0u);
}

TEST(ApiRobustness, CancelPathIsDeterministic) {
  // Byte-equal trace replay: the same invocation sequence (with cancels)
  // applied to two validating engines yields identical event traces.
  EngineOptions o = validated();
  o.record_trace = true;
  auto run = [&](Engine& e) {
    const RequestId a = e.issue_write(1, ResourceSet(2, {0}));
    const RequestId b = e.issue_write(2, ResourceSet(2, {0}));
    e.issue_read(3, ResourceSet(2, {1}));
    e.cancel(4, b);
    e.complete(5, a);
    (void)b;
  };
  Engine e1(2, o), e2(2, o);
  run(e1);
  run(e2);
  EXPECT_EQ(format_trace(e1.trace()), format_trace(e2.trace()));
  EXPECT_FALSE(format_trace(e1.trace()).empty());
}

// --- force_release() edge cases --------------------------------------------

TEST(ApiRobustness, ForceReleaseInvalidTargetsRejected) {
  Engine e(1, validated());
  const RequestId a = e.issue_write(1, ResourceSet(1, {0}));
  const RequestId b = e.issue_write(2, ResourceSet(1, {0}));
  ASSERT_EQ(e.state(b), RequestState::Waiting);
  // Unknown id; waiting request (cancel()'s job); canceled request;
  // completed request.
  EXPECT_THROW(e.force_release(3, 42), std::invalid_argument);
  EXPECT_THROW(e.force_release(3, b), std::invalid_argument);
  e.cancel(3, b);
  EXPECT_THROW(e.force_release(4, b), std::invalid_argument);
  e.complete(4, a);
  EXPECT_THROW(e.force_release(5, a), std::invalid_argument);
  // Engine still works after the misuse barrage.
  const RequestId c = e.issue_write(6, ResourceSet(1, {0}));
  e.force_release(7, c);
  EXPECT_THROW(e.force_release(8, c), std::invalid_argument);  // double
  e.check_structure();
  EXPECT_EQ(e.incomplete_count(), 0u);
}

TEST(ApiRobustness, ForceReleaseTimeMustNotGoBackwards) {
  Engine e(1, validated());
  const RequestId a = e.issue_write(5, ResourceSet(1, {0}));
  EXPECT_THROW(e.force_release(4.9, a), std::invalid_argument);
  EXPECT_TRUE(e.is_satisfied(a));  // rejected invocation changed nothing
  e.force_release(5, a);
  EXPECT_EQ(e.state(a), RequestState::ForceReleased);
}

TEST(ApiRobustness, EngineUsableAfterManyErrors) {
  Engine e(2, validated());
  for (int i = 0; i < 50; ++i) {
    EXPECT_THROW(e.issue_read(1, ResourceSet(2)), std::invalid_argument);
    EXPECT_THROW(e.complete(1, 999), std::invalid_argument);
  }
  const RequestId r = e.issue_read(2, ResourceSet(2, {0, 1}));
  EXPECT_TRUE(e.is_satisfied(r));
  e.complete(3, r);
  e.check_structure();
}

}  // namespace
}  // namespace rwrnlp::rsm
