// API-misuse and edge-case tests: every invalid call must be rejected with
// std::invalid_argument and must leave the engine in a usable state.
#include <gtest/gtest.h>

#include "rsm/engine.hpp"

namespace rwrnlp::rsm {
namespace {

EngineOptions validated() {
  EngineOptions o;
  o.validate = true;
  return o;
}

TEST(ApiRobustness, EmptyRequestsRejected) {
  Engine e(3, validated());
  EXPECT_THROW(e.issue_read(1, ResourceSet(3)), std::invalid_argument);
  EXPECT_THROW(e.issue_write(1, ResourceSet(3)), std::invalid_argument);
  EXPECT_THROW(e.issue_mixed(1, ResourceSet(3, {0}), ResourceSet(3)),
               std::invalid_argument);
  EXPECT_THROW(e.issue_upgradeable(1, ResourceSet(3)),
               std::invalid_argument);
  EXPECT_THROW(
      e.issue_incremental(1, ResourceSet(3), ResourceSet(3), ResourceSet(3)),
      std::invalid_argument);
  // Engine still works.
  const RequestId id = e.issue_write(2, ResourceSet(3, {0}));
  e.complete(3, id);
}

TEST(ApiRobustness, MismatchedShareTableRejected) {
  ReadShareTable shares(2);
  EXPECT_THROW(Engine(3, shares, validated()), std::invalid_argument);
}

TEST(ApiRobustness, TimeMustNotGoBackwards) {
  Engine e(1, validated());
  const RequestId a = e.issue_write(5, ResourceSet(1, {0}));
  EXPECT_THROW(e.issue_write(4.9, ResourceSet(1, {0})),
               std::invalid_argument);
  EXPECT_THROW(e.complete(4.9, a), std::invalid_argument);
  e.complete(5, a);  // equal times are fine (total order via sequence)
}

TEST(ApiRobustness, BadRequestIdsRejected) {
  Engine e(1, validated());
  EXPECT_THROW(e.complete(1, 42), std::invalid_argument);
  EXPECT_THROW(e.request(7), std::invalid_argument);
  EXPECT_THROW(e.blockers(7), std::invalid_argument);
}

TEST(ApiRobustness, DoubleCompleteRejected) {
  Engine e(1, validated());
  const RequestId a = e.issue_write(1, ResourceSet(1, {0}));
  e.complete(2, a);
  EXPECT_THROW(e.complete(3, a), std::invalid_argument);
}

TEST(ApiRobustness, CompleteOfWaitingRequestRejected) {
  Engine e(1, validated());
  const RequestId a = e.issue_write(1, ResourceSet(1, {0}));
  const RequestId b = e.issue_write(2, ResourceSet(1, {0}));
  EXPECT_THROW(e.complete(3, b), std::invalid_argument);
  e.complete(3, a);
  e.complete(4, b);
}

TEST(ApiRobustness, FinishReadSegmentGuards) {
  Engine e(1, validated());
  const auto pair = e.issue_upgradeable(1, ResourceSet(1, {0}));
  // A non-pair id is rejected.
  const RequestId w = e.issue_write(2, ResourceSet(1, {0}));
  UpgradeablePair bogus{w, w};
  EXPECT_THROW(e.finish_read_segment(3, bogus, true),
               std::invalid_argument);
  e.finish_read_segment(3, pair, false);
  // Finishing twice is rejected (read half already complete).
  EXPECT_THROW(e.finish_read_segment(4, pair, false),
               std::invalid_argument);
  e.complete(4, w);
}

TEST(ApiRobustness, RequestMoreGuards) {
  Engine e(2, validated());
  const RequestId plain = e.issue_write(1, ResourceSet(2, {0}));
  EXPECT_THROW(e.request_more(2, plain, ResourceSet(2, {1})),
               std::invalid_argument);  // not incremental
  e.complete(2, plain);
  const RequestId inc = e.issue_incremental(
      3, ResourceSet(2), ResourceSet(2, {0}), ResourceSet(2, {0}));
  EXPECT_THROW(e.request_more(4, inc, ResourceSet(2, {1})),
               std::invalid_argument);  // outside declared set
  e.complete(4, inc);
  EXPECT_THROW(e.request_more(5, inc, ResourceSet(2, {0})),
               std::invalid_argument);  // finished
}

TEST(ApiRobustness, ResourceIndexOutOfRangeRejected) {
  Engine e(2, validated());
  EXPECT_THROW(e.issue_read(1, ResourceSet(5, {4})), std::invalid_argument);
  EXPECT_THROW(e.read_queue(9), std::invalid_argument);
  EXPECT_THROW(e.write_queue(9), std::invalid_argument);
  EXPECT_THROW(e.write_holder(9), std::invalid_argument);
}

TEST(ApiRobustness, EngineUsableAfterManyErrors) {
  Engine e(2, validated());
  for (int i = 0; i < 50; ++i) {
    EXPECT_THROW(e.issue_read(1, ResourceSet(2)), std::invalid_argument);
    EXPECT_THROW(e.complete(1, 999), std::invalid_argument);
  }
  const RequestId r = e.issue_read(2, ResourceSet(2, {0, 1}));
  EXPECT_TRUE(e.is_satisfied(r));
  e.complete(3, r);
  e.check_structure();
}

}  // namespace
}  // namespace rwrnlp::rsm
