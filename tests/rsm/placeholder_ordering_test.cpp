// Focused tests for the placeholder mechanism of Sec. 3.4: placeholders
// never lock, block *later* writers from entitlement (preserving Lemma 6's
// FIFO reasoning), and disappear exactly when their owner becomes entitled
// or satisfied.
#include <gtest/gtest.h>

#include "rsm/engine.hpp"
#include "rsm/invariants.hpp"

namespace rwrnlp::rsm {
namespace {

ReadShareTable shared01(std::size_t q = 2) {
  ReadShareTable t(q);
  t.declare_read_request(ResourceSet(q, {0, 1}));  // l0 ~ l1
  return t;
}

EngineOptions holder_mode() {
  EngineOptions o;
  o.expansion = WriteExpansion::Placeholders;
  o.validate = true;
  return o;
}

TEST(PlaceholderOrdering, PlaceholderBlocksLaterWriterHeadship) {
  Engine e(2, shared01(), holder_mode());
  // W0 holds l0; W1 (needs l0) queues with a placeholder on l1; W2 (needs
  // l1) must wait behind that placeholder even though l1 is free.
  const RequestId w0 = e.issue_write(1, ResourceSet(2, {0}));
  ASSERT_TRUE(e.is_satisfied(w0));
  const RequestId w1 = e.issue_write(2, ResourceSet(2, {0}));
  EXPECT_EQ(e.state(w1), RequestState::Waiting);
  {
    const auto wq1 = e.write_queue(1);
    ASSERT_EQ(wq1.size(), 1u);
    EXPECT_EQ(wq1[0].req, w1);
    EXPECT_TRUE(wq1[0].placeholder);
  }
  const RequestId w2 = e.issue_write(3, ResourceSet(2, {1}));
  EXPECT_EQ(e.state(w2), RequestState::Waiting)
      << "W2 must not slip past W1's placeholder (Lemma 6)";
  EXPECT_FALSE(e.write_locked(1)) << "placeholders never lock";

  // W0 completes: W1 becomes entitled+satisfied; its placeholder vanishes
  // and W2 becomes the head of WQ(l1) and is satisfied in the same
  // invocation (they do not conflict).
  e.complete(4, w0);
  EXPECT_TRUE(e.is_satisfied(w1));
  EXPECT_TRUE(e.is_satisfied(w2));
  EXPECT_EQ(e.write_holder(0), w1);
  EXPECT_EQ(e.write_holder(1), w2);
  e.complete(5, w1);
  e.complete(6, w2);
}

TEST(PlaceholderOrdering, PlaceholderRemovedAtEntitlement) {
  Engine e(2, shared01(), holder_mode());
  // A reader holds l0, so W1 is *entitled* (not satisfied) at issuance:
  // the placeholder must already be gone, freeing l1's queue.
  const RequestId r = e.issue_read(1, ResourceSet(2, {0}));
  const RequestId w1 = e.issue_write(2, ResourceSet(2, {0}));
  ASSERT_EQ(e.state(w1), RequestState::Entitled);
  EXPECT_TRUE(e.write_queue(1).empty())
      << "placeholders are removed when the owner becomes entitled";
  const RequestId w2 = e.issue_write(3, ResourceSet(2, {1}));
  EXPECT_TRUE(e.is_satisfied(w2)) << "l1 is free for the later writer";
  e.complete(4, r);
  EXPECT_TRUE(e.is_satisfied(w1));
  e.complete(5, w1);
  e.complete(6, w2);
}

TEST(PlaceholderOrdering, ChainedPlaceholdersKeepTimestampOrder) {
  // Three writers whose needed sets walk a shared chain: satisfaction must
  // follow timestamps wherever they conflict, with placeholders carrying
  // the order across the closure.
  ReadShareTable t(3);
  t.declare_read_request(ResourceSet(3, {0, 1}));
  t.declare_read_request(ResourceSet(3, {1, 2}));
  Engine e(3, t, holder_mode());
  ProtocolObserver obs(e);

  const RequestId hold = e.issue_write(1, ResourceSet(3, {0}));
  obs.after_invocation(InvocationKind::WriteIssue);
  const RequestId w1 = e.issue_write(2, ResourceSet(3, {0}));  // ph on l1
  obs.after_invocation(InvocationKind::WriteIssue);
  const RequestId w2 = e.issue_write(3, ResourceSet(3, {1}));  // ph on l0,l2
  obs.after_invocation(InvocationKind::WriteIssue);
  const RequestId w3 = e.issue_write(4, ResourceSet(3, {2}));  // ph on l1
  obs.after_invocation(InvocationKind::WriteIssue);

  // Everyone waits behind the chain (w2 behind w1's placeholder, w3 behind
  // w2's placeholder), even though l1 and l2 are unlocked.
  EXPECT_EQ(e.state(w1), RequestState::Waiting);
  EXPECT_EQ(e.state(w2), RequestState::Waiting);
  EXPECT_EQ(e.state(w3), RequestState::Waiting);

  e.complete(5, hold);
  obs.after_invocation(InvocationKind::WriteComplete);
  // The chain unravels in timestamp order within one invocation: w1
  // entitled+satisfied, then w2, then w3 (pairwise non-conflicting).
  EXPECT_TRUE(e.is_satisfied(w1));
  EXPECT_TRUE(e.is_satisfied(w2));
  EXPECT_TRUE(e.is_satisfied(w3));
  e.complete(6, w1);
  obs.after_invocation(InvocationKind::WriteComplete);
  e.complete(7, w2);
  obs.after_invocation(InvocationKind::WriteComplete);
  e.complete(8, w3);
  obs.after_invocation(InvocationKind::WriteComplete);
}

TEST(PlaceholderOrdering, ExpansionModeSerializesTheSameChain) {
  // Under expansion the same chain *locks* the closure, so the three
  // writers serialize — the concurrency placeholders recover.
  ReadShareTable t(3);
  t.declare_read_request(ResourceSet(3, {0, 1}));
  t.declare_read_request(ResourceSet(3, {1, 2}));
  EngineOptions o;
  o.validate = true;
  Engine e(3, t, o);
  const RequestId hold = e.issue_write(1, ResourceSet(3, {0}));
  const RequestId w1 = e.issue_write(2, ResourceSet(3, {0}));
  const RequestId w2 = e.issue_write(3, ResourceSet(3, {1}));
  e.complete(4, hold);
  EXPECT_TRUE(e.is_satisfied(w1));
  EXPECT_EQ(e.state(w2), RequestState::Waiting)
      << "expansion write-locks l1, serializing the chain";
  e.complete(5, w1);
  EXPECT_TRUE(e.is_satisfied(w2));
  e.complete(6, w2);
}

}  // namespace
}  // namespace rwrnlp::rsm
