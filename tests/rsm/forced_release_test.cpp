// Engine::force_release unit tests: revocation of satisfied holders and
// entitled incremental requests, shared-fate upgrade pairs, successor
// promotion in the same invocation, rejection of non-revocable targets, and
// the recovered-state invariant (check_recovered_state) after every
// revocation.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "rsm/engine.hpp"
#include "rsm/invariants.hpp"
#include "rsm/trace.hpp"

namespace rwrnlp::rsm {
namespace {

EngineOptions validated() {
  EngineOptions o;
  o.validate = true;
  o.record_trace = true;
  return o;
}

TEST(ForcedRelease, RevokedWriterPromotesSuccessorInSameInvocation) {
  Engine e(2, validated());
  ProtocolObserver obs(e);
  const RequestId w1 = e.issue_write(1, ResourceSet(2, {0, 1}));
  obs.after_invocation(InvocationKind::WriteIssue);
  const RequestId w2 = e.issue_write(2, ResourceSet(2, {0, 1}));
  obs.after_invocation(InvocationKind::WriteIssue);
  ASSERT_TRUE(e.is_satisfied(w1));
  ASSERT_EQ(e.state(w2), RequestState::Waiting);

  e.force_release(3, w1, Engine::RevokeReason::StuckBudget);
  obs.after_invocation(InvocationKind::ForcedRelease);
  check_recovered_state(e, w1);
  // The revocation and the promotion it enables are one atomic invocation.
  EXPECT_EQ(e.state(w1), RequestState::ForceReleased);
  EXPECT_TRUE(e.is_satisfied(w2));
  e.complete(4, w2);
}

TEST(ForcedRelease, RevokedReaderUnblocksWaitingWriter) {
  Engine e(1, validated());
  const RequestId r = e.issue_read(1, ResourceSet(1, {0}));
  const RequestId w = e.issue_write(2, ResourceSet(1, {0}));
  ASSERT_TRUE(e.is_satisfied(r));
  ASSERT_FALSE(e.is_satisfied(w));

  e.force_release(3, r);
  check_recovered_state(e, r);
  EXPECT_TRUE(e.is_satisfied(w));
  EXPECT_FALSE(e.read_locked(0));
  e.complete(4, w);
}

TEST(ForcedRelease, TraceRecordsForcedReleaseKind) {
  Engine e(1, validated());
  const RequestId w = e.issue_write(1, ResourceSet(1, {0}));
  e.force_release(2, w);
  bool seen = false;
  for (const TraceEvent& ev : e.trace())
    if (ev.kind == TraceKind::ForcedRelease && ev.request == w) seen = true;
  EXPECT_TRUE(seen);
}

TEST(ForcedRelease, WaitingAndUnknownAndDoubleRevocationsRejected) {
  Engine e(1, validated());
  const RequestId w1 = e.issue_write(1, ResourceSet(1, {0}));
  const RequestId w2 = e.issue_write(2, ResourceSet(1, {0}));
  ASSERT_EQ(e.state(w2), RequestState::Waiting);
  // A waiting request is cancel()'s job, not force_release()'s.
  EXPECT_THROW(e.force_release(3, w2), std::invalid_argument);
  // Unknown id.
  EXPECT_THROW(e.force_release(3, 42), std::invalid_argument);
  e.force_release(3, w1);
  // Double revocation (the slot may by now belong to a successor, but w1's
  // state is terminal until recycled).
  EXPECT_THROW(e.force_release(4, w1), std::invalid_argument);
  e.complete(5, w2);
}

TEST(ForcedRelease, UpgradePairSharesFate) {
  Engine e(1, validated());
  const UpgradeablePair p = e.issue_upgradeable(1, ResourceSet(1, {0}));
  ASSERT_TRUE(e.is_satisfied(p.read_part));
  ASSERT_FALSE(e.is_satisfied(p.write_part));
  const RequestId w = e.issue_write(2, ResourceSet(1, {0}));

  // Revoking the satisfied read half withdraws the still-live write half
  // too — exactly as finish_read_segment(upgrade=false) would have.
  e.force_release(3, p.read_part);
  check_recovered_state(e, p.read_part);
  EXPECT_FALSE(e.request(p.write_part).incomplete());
  EXPECT_TRUE(e.is_satisfied(w));
  e.complete(4, w);
}

TEST(ForcedRelease, EntitledIncrementalPartialGrantReleased) {
  Engine e(2, validated());
  const RequestId w = e.issue_read(1, ResourceSet(2, {1}));
  // Incremental on initial {0} is satisfied; growing to {1} blocks behind
  // the reader, so the request sits Entitled holding a partial grant on l0.
  const RequestId inc = e.issue_incremental(2, ResourceSet(2),
                                            ResourceSet(2, {0, 1}),
                                            ResourceSet(2, {0}));
  e.request_more(3, inc, ResourceSet(2, {1}));
  ASSERT_EQ(e.state(inc), RequestState::Entitled);
  ASSERT_TRUE(e.holds(inc).test(0));

  const RequestId w0 = e.issue_write(3, ResourceSet(2, {0}));
  ASSERT_FALSE(e.is_satisfied(w0));

  e.force_release(4, inc);
  check_recovered_state(e, inc);
  // The partial grant on l0 is gone and its successor promoted.
  EXPECT_TRUE(e.is_satisfied(w0));
  e.complete(5, w0);
  e.complete(6, w);
}

TEST(ForcedRelease, NotCountedAsConflictingCompletionByObserver) {
  // The observer treats ForcedRelease like Cancel: excluded from the E8/E9
  // per-kind attribution but still subject to every cross-invocation check.
  Engine e(1, validated());
  ProtocolObserver obs(e);
  std::vector<RequestId> writers;
  for (int i = 0; i < 4; ++i) {
    writers.push_back(e.issue_write(i + 1, ResourceSet(1, {0})));
    obs.after_invocation(InvocationKind::WriteIssue);
  }
  for (int i = 0; i < 4; ++i) {
    e.force_release(10 + i, writers[i]);
    obs.after_invocation(InvocationKind::ForcedRelease);
    check_recovered_state(e, writers[i]);
  }
  EXPECT_EQ(e.incomplete_count(), 0u);
}

TEST(ForcedRelease, DeterministicAcrossRuns) {
  auto run = [] {
    Engine e(3, validated());
    const RequestId w = e.issue_write(1, ResourceSet(3, {0, 1}));
    e.issue_read(2, ResourceSet(3, {1, 2}));
    e.issue_write(3, ResourceSet(3, {0}));
    e.force_release(4, w);
    return e.trace().size();
  };
  EXPECT_EQ(run(), run());
}

TEST(ForcedRelease, MixedHolderReleasesReadAndWriteSidesAtOnce) {
  Engine e(2, validated());
  const RequestId m = e.issue_mixed(1, ResourceSet(2, {0}),
                                    ResourceSet(2, {1}));
  ASSERT_TRUE(e.is_satisfied(m));
  const RequestId r = e.issue_read(2, ResourceSet(2, {1}));
  const RequestId w = e.issue_write(3, ResourceSet(2, {0}));
  ASSERT_FALSE(e.is_satisfied(r));
  ASSERT_FALSE(e.is_satisfied(w));

  e.force_release(4, m);
  check_recovered_state(e, m);
  EXPECT_TRUE(e.is_satisfied(r));
  EXPECT_TRUE(e.is_satisfied(w));
  e.complete(5, r);
  e.complete(6, w);
}

}  // namespace
}  // namespace rwrnlp::rsm
