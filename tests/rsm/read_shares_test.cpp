#include "rsm/read_shares.hpp"

#include <gtest/gtest.h>

namespace rwrnlp::rsm {
namespace {

TEST(ReadShareTable, ReflexiveByDefault) {
  ReadShareTable t(4);
  for (ResourceId l = 0; l < 4; ++l) {
    EXPECT_EQ(t.read_set(l), ResourceSet(4, {l})) << "l" << l;
  }
}

TEST(ReadShareTable, DeclareReadRequestIsSymmetric) {
  // The paper's running example: N_{5,1} = {l_a, l_b} implies l_a ~ l_b and
  // l_b ~ l_a (footnote 1: read sharing is reflexive and symmetric).
  ReadShareTable t(3);
  t.declare_read_request(ResourceSet(3, {0, 1}));
  EXPECT_EQ(t.read_set(0), ResourceSet(3, {0, 1}));
  EXPECT_EQ(t.read_set(1), ResourceSet(3, {0, 1}));
  EXPECT_EQ(t.read_set(2), ResourceSet(3, {2}));
}

TEST(ReadShareTable, ClosureOfWriteNeeds) {
  // Sec. 3.2 example: N_{2,1} = {l_a, l_c} with l_a ~ l_b forces
  // D_{2,1} = {l_a, l_b, l_c}.
  ReadShareTable t(3);
  t.declare_read_request(ResourceSet(3, {0, 1}));
  EXPECT_EQ(t.closure(ResourceSet(3, {0, 2})), ResourceSet(3, {0, 1, 2}));
}

TEST(ReadShareTable, ClosureOfUnrelatedSetIsIdentity) {
  ReadShareTable t(5);
  t.declare_read_request(ResourceSet(5, {0, 1}));
  EXPECT_EQ(t.closure(ResourceSet(5, {2, 3})), ResourceSet(5, {2, 3}));
}

TEST(ReadShareTable, MixedRequestIsAsymmetric) {
  // Footnote 2: with mixed requests the relation need not be symmetric.  A
  // mixed request reading {l0} while writing {l1} puts l0 into S(l1) but
  // does not put l1 into S(l0).
  ReadShareTable t(3);
  t.declare_mixed_request(/*reads=*/ResourceSet(3, {0}),
                          /*writes=*/ResourceSet(3, {1}));
  EXPECT_EQ(t.read_set(1), ResourceSet(3, {0, 1}));
  EXPECT_EQ(t.read_set(0), ResourceSet(3, {0}));
}

TEST(ReadShareTable, AddShareDirect) {
  ReadShareTable t(3);
  t.add_share(2, 0);
  EXPECT_EQ(t.read_set(2), ResourceSet(3, {0, 2}));
  EXPECT_EQ(t.read_set(0), ResourceSet(3, {0}));
}

TEST(ReadShareTable, OverlappingDeclarationsAccumulate) {
  ReadShareTable t(4);
  t.declare_read_request(ResourceSet(4, {0, 1}));
  t.declare_read_request(ResourceSet(4, {1, 2}));
  EXPECT_EQ(t.read_set(1), ResourceSet(4, {0, 1, 2}));
  // Read sharing is NOT transitive: S(l0) gains l1 but not l2.
  EXPECT_EQ(t.read_set(0), ResourceSet(4, {0, 1}));
  // Closure over {l0} is S(l0) only.
  EXPECT_EQ(t.closure(ResourceSet(4, {0})), ResourceSet(4, {0, 1}));
}

TEST(ReadShareTable, OutOfRangeThrows) {
  ReadShareTable t(2);
  EXPECT_THROW(t.add_share(0, 5), std::invalid_argument);
  EXPECT_THROW(t.read_set(2), std::invalid_argument);
}

}  // namespace
}  // namespace rwrnlp::rsm
