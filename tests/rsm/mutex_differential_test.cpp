// Differential test for the mutex-only configuration (the original RNLP
// under Assumption 1, used as a baseline): against an independently
// written reference model in which each resource has one FIFO queue
// ordered by timestamps and a request is satisfied exactly when it heads
// every queue it is enqueued in and all its resources are free.
#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <vector>

#include "rsm/engine.hpp"
#include "util/rng.hpp"

namespace rwrnlp::rsm {
namespace {

class MutexRnlpReference {
 public:
  explicit MutexRnlpReference(std::size_t q) : queues_(q) {}

  void issue(RequestId id, const ResourceSet& rs) {
    need_[id] = rs;
    rs.for_each([&](ResourceId l) { queues_[l].push_back(id); });
    settle();
  }

  void complete(RequestId id) {
    need_[id].for_each([&](ResourceId l) { locked_[l] = false; });
    holding_.erase(id);
    need_.erase(id);
    settle();
  }

  std::set<RequestId> satisfied() const { return holding_; }

 private:
  void settle() {
    bool changed = true;
    while (changed) {
      changed = false;
      for (const auto& [id, rs] : need_) {
        if (holding_.count(id)) continue;
        bool ok = true;
        rs.for_each([&](ResourceId l) {
          if (queues_[l].empty() || queues_[l].front() != id) ok = false;
          if (locked_.count(l) && locked_.at(l)) ok = false;
        });
        if (ok) {
          rs.for_each([&](ResourceId l) {
            locked_[l] = true;
            queues_[l].pop_front();
          });
          holding_.insert(id);
          changed = true;
        }
      }
    }
  }

  std::vector<std::deque<RequestId>> queues_;
  std::map<ResourceId, bool> locked_;
  std::map<RequestId, ResourceSet> need_;
  std::set<RequestId> holding_;
};

std::set<RequestId> engine_satisfied(const Engine& e) {
  std::set<RequestId> s;
  for (RequestId id : e.incomplete_requests())
    if (e.is_satisfied(id)) s.insert(id);
  return s;
}

class MutexDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MutexDifferential, EngineMatchesFifoReference) {
  constexpr std::size_t kQ = 4;
  EngineOptions opt;
  opt.validate = true;
  Engine engine(kQ, opt);
  MutexRnlpReference ref(kQ);
  Rng rng(GetParam());

  std::vector<RequestId> live;
  double t = 0;
  for (int step = 0; step < 600; ++step) {
    t += 1;
    const bool can_issue = live.size() < 6;
    if (can_issue && (live.empty() || rng.chance(0.55))) {
      ResourceSet rs(kQ);
      for (std::size_t idx :
           rng.sample_indices(kQ, 1 + rng.next_below(3)))
        rs.set(static_cast<ResourceId>(idx));
      const RequestId id = engine.issue_write(t, rs);  // mutex: all writes
      ref.issue(id, rs);
      live.push_back(id);
    } else {
      std::vector<RequestId> sat;
      for (RequestId id : live)
        if (engine.is_satisfied(id)) sat.push_back(id);
      ASSERT_FALSE(sat.empty()) << "liveness failure at step " << step;
      const RequestId victim = sat[rng.next_below(sat.size())];
      engine.complete(t, victim);
      ref.complete(victim);
      live.erase(std::find(live.begin(), live.end(), victim));
    }
    ASSERT_EQ(engine_satisfied(engine), ref.satisfied())
        << "divergence at step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutexDifferential,
                         ::testing::Values(5, 10, 15, 20, 25, 30));

}  // namespace
}  // namespace rwrnlp::rsm
