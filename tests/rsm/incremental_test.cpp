// Tests for incremental locking (Sec. 3.7): a request declares the full set
// of resources it may need (a priori, like PCP ceilings), is treated as a
// request for all of them for ordering purposes, and locks subsets as it
// actually needs them.
#include <gtest/gtest.h>

#include "rsm/engine.hpp"

namespace rwrnlp::rsm {
namespace {

EngineOptions validated() {
  EngineOptions o;
  o.validate = true;
  return o;
}

TEST(Incremental, WriteGrantsInitialSubsetImmediatelyWhenIdle) {
  Engine e(3, validated());
  const RequestId w = e.issue_incremental(
      1, ResourceSet(3), ResourceSet(3, {0, 1, 2}), ResourceSet(3, {0}));
  EXPECT_EQ(e.state(w), RequestState::Entitled);
  EXPECT_EQ(e.holds(w), ResourceSet(3, {0}));
  EXPECT_TRUE(e.write_locked(0));
  EXPECT_FALSE(e.write_locked(1));
  e.complete(2, w);
  EXPECT_FALSE(e.write_locked(0));
}

TEST(Incremental, RequestMoreGrantsWhenFree) {
  Engine e(3, validated());
  const RequestId w = e.issue_incremental(
      1, ResourceSet(3), ResourceSet(3, {0, 1, 2}), ResourceSet(3, {0}));
  e.request_more(2, w, ResourceSet(3, {1}));
  EXPECT_EQ(e.holds(w), ResourceSet(3, {0, 1}));
  e.request_more(3, w, ResourceSet(3, {2}));
  // All of D granted: the request counts as satisfied and dequeues.
  EXPECT_EQ(e.state(w), RequestState::Satisfied);
  EXPECT_TRUE(e.write_queue(0).empty());
  e.complete(4, w);
}

TEST(Incremental, RequestOutsideDeclaredSetRejected) {
  Engine e(3, validated());
  const RequestId w = e.issue_incremental(
      1, ResourceSet(3), ResourceSet(3, {0, 1}), ResourceSet(3, {0}));
  EXPECT_THROW(e.request_more(2, w, ResourceSet(3, {2})),
               std::invalid_argument);
  e.complete(3, w);
}

TEST(Incremental, EntitlementBlocksLaterConflictingRequests) {
  // The PCP-like property: while the incremental request is entitled over
  // D = {l0, l1}, a later write to l1 may not slip in even though l1 is not
  // yet locked.
  Engine e(2, validated());
  const RequestId inc = e.issue_incremental(
      1, ResourceSet(2), ResourceSet(2, {0, 1}), ResourceSet(2, {0}));
  ASSERT_EQ(e.state(inc), RequestState::Entitled);
  const RequestId w2 = e.issue_write(2, ResourceSet(2, {1}));
  EXPECT_EQ(e.state(w2), RequestState::Waiting);
  const RequestId r2 = e.issue_read(3, ResourceSet(2, {1}));
  EXPECT_EQ(e.state(r2), RequestState::Waiting);
  // The incremental request gets l1 instantly when it asks.
  e.request_more(4, inc, ResourceSet(2, {1}));
  EXPECT_EQ(e.holds(inc), ResourceSet(2, {0, 1}));
  e.complete(5, inc);
  // Phase fairness: r2 became entitled when the incremental writer locked
  // l1 (Def. 3), so the read phase runs first, then the queued writer.
  EXPECT_TRUE(e.is_satisfied(r2));
  EXPECT_EQ(e.state(w2), RequestState::Entitled);
  e.complete(6, r2);
  EXPECT_TRUE(e.is_satisfied(w2));
  e.complete(7, w2);
}

TEST(Incremental, GrantWaitsForConflictingHolderThenArrives) {
  // l1 is read-held when the incremental writer asks for it; the grant
  // happens at the holder's completion.
  Engine e(2, validated());
  const RequestId r = e.issue_read(1, ResourceSet(2, {1}));
  const RequestId inc = e.issue_incremental(
      2, ResourceSet(2), ResourceSet(2, {0, 1}), ResourceSet(2, {0}));
  ASSERT_EQ(e.state(inc), RequestState::Entitled);
  EXPECT_EQ(e.holds(inc), ResourceSet(2, {0}));
  e.request_more(3, inc, ResourceSet(2, {1}));
  EXPECT_EQ(e.holds(inc), ResourceSet(2, {0}));  // still read-held by r
  e.complete(4, r);
  EXPECT_EQ(e.holds(inc), ResourceSet(2, {0, 1}));
  EXPECT_EQ(e.state(inc), RequestState::Satisfied);
  e.complete(5, inc);
}

TEST(Incremental, IncrementalReadCoexistsWithOtherReaders) {
  Engine e(2, validated());
  const RequestId r1 = e.issue_read(1, ResourceSet(2, {0}));
  const RequestId inc = e.issue_incremental(
      2, ResourceSet(2, {0, 1}), ResourceSet(2), ResourceSet(2, {0}));
  // Incremental read: pseudo-entitled, holds l0 alongside r1.
  EXPECT_EQ(e.state(inc), RequestState::Entitled);
  EXPECT_EQ(e.holds(inc), ResourceSet(2, {0}));
  EXPECT_EQ(e.read_holders(0).size(), 2u);
  e.request_more(3, inc, ResourceSet(2, {1}));
  EXPECT_EQ(e.state(inc), RequestState::Satisfied);
  e.complete(4, r1);
  e.complete(5, inc);
}

TEST(Incremental, IncrementalReadBlocksLaterWriterEntitlement) {
  Engine e(2, validated());
  const RequestId inc = e.issue_incremental(
      1, ResourceSet(2, {0, 1}), ResourceSet(2), ResourceSet(2, {0}));
  ASSERT_EQ(e.state(inc), RequestState::Entitled);
  const RequestId w = e.issue_write(2, ResourceSet(2, {1}));
  // l1 is unlocked, but the entitled incremental read over {l0, l1} blocks
  // the writer's Def. 4 (no conflicting entitled read).
  EXPECT_EQ(e.state(w), RequestState::Waiting);
  e.complete(3, inc);
  EXPECT_TRUE(e.is_satisfied(w));
  e.complete(4, w);
}

TEST(Incremental, BlockedInitialSubsetGrantsAtEntitlement) {
  // The incremental writer is issued while l0 is write-held; once the
  // holder finishes, the writer becomes entitled and the initial subset is
  // granted in the same invocation.
  Engine e(2, validated());
  const RequestId w0 = e.issue_write(1, ResourceSet(2, {0}));
  const RequestId inc = e.issue_incremental(
      2, ResourceSet(2), ResourceSet(2, {0, 1}), ResourceSet(2, {0}));
  EXPECT_EQ(e.state(inc), RequestState::Waiting);
  EXPECT_TRUE(e.holds(inc).empty());
  e.complete(3, w0);
  EXPECT_EQ(e.state(inc), RequestState::Entitled);
  EXPECT_EQ(e.holds(inc), ResourceSet(2, {0}));
  e.complete(4, inc);
}

TEST(Incremental, TotalDelayAcrossIncrementsBoundedByEntitlementProtection) {
  // Cor. 1 consequence exercised concretely: once entitled, only the
  // *pre-existing* holders can delay any increment; requests issued later
  // never get in the way.
  Engine e(3, validated());
  const RequestId r_pre = e.issue_read(1, ResourceSet(3, {2}));
  const RequestId inc = e.issue_incremental(
      2, ResourceSet(3), ResourceSet(3, {0, 1, 2}), ResourceSet(3, {0}));
  ASSERT_EQ(e.state(inc), RequestState::Entitled);
  // Later arrivals on every resource.
  const RequestId w_late = e.issue_write(3, ResourceSet(3, {1}));
  const RequestId r_late = e.issue_read(4, ResourceSet(3, {2}));
  EXPECT_EQ(e.state(w_late), RequestState::Waiting);
  EXPECT_EQ(e.state(r_late), RequestState::Waiting);
  e.request_more(5, inc, ResourceSet(3, {1}));
  EXPECT_TRUE(e.holds(inc).test(1));  // w_late could not take l1
  e.request_more(6, inc, ResourceSet(3, {2}));
  EXPECT_FALSE(e.holds(inc).test(2));  // pre-existing reader still there
  e.complete(7, r_pre);
  EXPECT_TRUE(e.holds(inc).test(2));
  EXPECT_EQ(e.state(inc), RequestState::Satisfied);
  e.complete(8, inc);
  EXPECT_TRUE(e.is_satisfied(w_late));
  e.complete(9, w_late);
  EXPECT_TRUE(e.is_satisfied(r_late));
  e.complete(10, r_late);
}

TEST(Incremental, CompleteWithoutEverTouchingSomeResources) {
  Engine e(4, validated());
  const RequestId inc = e.issue_incremental(
      1, ResourceSet(4), ResourceSet(4, {0, 1, 2, 3}), ResourceSet(4, {1}));
  EXPECT_EQ(e.holds(inc), ResourceSet(4, {1}));
  e.complete(2, inc);  // never asked for l0, l2, l3
  for (ResourceId l = 0; l < 4; ++l) {
    EXPECT_FALSE(e.write_locked(l));
    EXPECT_TRUE(e.write_queue(l).empty());
  }
}

TEST(Incremental, EmptyInitialSubsetAllowed) {
  Engine e(2, validated());
  const RequestId inc = e.issue_incremental(
      1, ResourceSet(2), ResourceSet(2, {0, 1}), ResourceSet(2));
  EXPECT_EQ(e.state(inc), RequestState::Entitled);
  EXPECT_TRUE(e.holds(inc).empty());
  e.request_more(2, inc, ResourceSet(2, {0}));
  EXPECT_EQ(e.holds(inc), ResourceSet(2, {0}));
  e.complete(3, inc);
}

}  // namespace
}  // namespace rwrnlp::rsm
