// The paper notes the Sec. 3.4-3.7 features "can be combined in a real
// implementation".  These tests drive engines with placeholders + mixing +
// upgrades + incremental requests simultaneously, with structural
// validation on every invocation, plus deterministic scenarios for the
// pairwise interactions.
#include <gtest/gtest.h>

#include <map>

#include "rsm/engine.hpp"
#include "util/rng.hpp"

namespace rwrnlp::rsm {
namespace {

EngineOptions holders_validated() {
  EngineOptions o;
  o.expansion = WriteExpansion::Placeholders;
  o.validate = true;
  return o;
}

TEST(CombinedFeatures, MixedRequestWithPlaceholdersAndSharedReadSets) {
  // l0 ~ l1 via a read pattern; a mixed request writing l2 and reading l0
  // must placeholder-enqueue on l1 but never lock it.
  ReadShareTable shares(3);
  shares.declare_read_request(ResourceSet(3, {0, 1}));
  shares.declare_mixed_request(ResourceSet(3, {0}), ResourceSet(3, {2}));
  Engine e(3, shares, holders_validated());
  const RequestId m = e.issue_mixed(1, ResourceSet(3, {0}),
                                    ResourceSet(3, {2}));
  EXPECT_TRUE(e.is_satisfied(m));
  EXPECT_FALSE(e.write_locked(1));
  EXPECT_FALSE(e.read_locked(1));
  // A reader of {l0, l1} shares l0 with the mixed holder.
  const RequestId r = e.issue_read(2, ResourceSet(3, {0, 1}));
  EXPECT_TRUE(e.is_satisfied(r));
  e.complete(3, m);
  e.complete(4, r);
}

TEST(CombinedFeatures, UpgradeableOverSharedReadSetUsesPlaceholders) {
  ReadShareTable shares(2);
  shares.declare_read_request(ResourceSet(2, {0, 1}));
  Engine e(2, shares, holders_validated());
  // Upgradeable over {l0}: its write half placeholders l1.
  const auto pair = e.issue_upgradeable(1, ResourceSet(2, {0}));
  EXPECT_TRUE(e.is_satisfied(pair.read_part));
  // Write half entitled (B = {read half}); placeholders removed at
  // entitlement, so a disjoint write to l1 can proceed immediately.
  const RequestId w = e.issue_write(2, ResourceSet(2, {1}));
  EXPECT_TRUE(e.is_satisfied(w));
  e.finish_read_segment(3, pair, true);
  EXPECT_TRUE(e.is_satisfied(pair.write_part));
  EXPECT_TRUE(e.write_locked(0));
  EXPECT_EQ(e.write_holder(1), w);
  e.complete(4, w);
  e.complete(5, pair.write_part);
}

TEST(CombinedFeatures, IncrementalMixedRequest) {
  // Incremental request with both read-mode and write-mode potential
  // resources: reads l0 (shared with other readers), writes l1.
  Engine e(3, holders_validated());
  const RequestId other = e.issue_read(1, ResourceSet(3, {0}));
  const RequestId inc = e.issue_incremental(
      2, /*potential_reads=*/ResourceSet(3, {0}),
      /*potential_writes=*/ResourceSet(3, {1}),
      /*initial=*/ResourceSet(3, {0}));
  // l0 is granted in read mode alongside the existing reader.
  EXPECT_EQ(e.state(inc), RequestState::Entitled);
  EXPECT_TRUE(e.holds(inc).test(0));
  EXPECT_EQ(e.read_holders(0).size(), 2u);
  e.request_more(3, inc, ResourceSet(3, {1}));
  EXPECT_EQ(e.state(inc), RequestState::Satisfied);
  EXPECT_EQ(e.write_holder(1), inc);
  e.complete(4, inc);
  e.complete(5, other);
}

TEST(CombinedFeatures, UpgradeAfterIncrementalCompletes) {
  Engine e(2, holders_validated());
  const RequestId inc = e.issue_incremental(
      1, ResourceSet(2), ResourceSet(2, {0, 1}), ResourceSet(2, {0}));
  const auto pair = e.issue_upgradeable(2, ResourceSet(2, {0}));
  // The incremental writer is entitled over {l0, l1}: the upgradeable pair
  // must wait entirely behind it.
  EXPECT_EQ(e.state(pair.read_part), RequestState::Waiting);
  EXPECT_EQ(e.state(pair.write_part), RequestState::Waiting);
  e.complete(3, inc);
  // At the drain the write half is entitled first (writer entitlement runs
  // before reader admission within an invocation), so the *write half*
  // wins the Sec. 3.6 race and the read half is canceled — the pessimistic
  // path, still within the write-grade worst case.
  EXPECT_TRUE(e.is_satisfied(pair.write_part));
  EXPECT_EQ(e.state(pair.read_part), RequestState::Canceled);
  e.complete(4, pair.write_part);
}

// Randomized all-features stress: every invocation validated; liveness at
// drain; per-kind accounting matches.
class AllFeaturesStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AllFeaturesStress, RandomizedDrive) {
  constexpr std::size_t kQ = 5;
  constexpr std::size_t kM = 5;
  constexpr std::size_t kSteps = 300;
  Rng rng(GetParam());

  ReadShareTable shares(kQ);
  std::vector<ResourceSet> read_patterns;
  for (int i = 0; i < 4; ++i) {
    ResourceSet p(kQ);
    for (std::size_t idx : rng.sample_indices(kQ, 1 + rng.next_below(2)))
      p.set(static_cast<ResourceId>(idx));
    shares.declare_read_request(p);
    read_patterns.push_back(p);
  }
  // Declare every mixed shape the stress can issue (pattern minus one
  // written resource) — the a-priori knowledge the protocol requires.
  for (const auto& p : read_patterns) {
    for (ResourceId w = 0; w < kQ; ++w) {
      ResourceSet ws(kQ);
      ws.set(w);
      ResourceSet rs = p;
      rs -= ws;
      if (!rs.empty()) shares.declare_mixed_request(rs, ws);
    }
  }
  Engine e(kQ, shares, holders_validated());

  struct Live {
    RequestId id = kNoRequest;
    UpgradeablePair pair;
    int kind;  // 0 read, 1 write, 2 mixed, 3 upgradeable, 4 incremental
    int stage = 0;
  };
  std::vector<Live> live;
  double t = 0;
  std::size_t issued = 0, finished = 0;

  auto current_satisfied = [&](const Live& l) {
    switch (l.kind) {
      case 3: {
        if (l.stage == 0) {
          // Either half may win the race (the read half can be canceled).
          return e.request(l.pair.read_part).state ==
                     RequestState::Satisfied ||
                 e.request(l.pair.write_part).state ==
                     RequestState::Satisfied;
        }
        return e.request(l.pair.write_part).state == RequestState::Satisfied;
      }
      case 4:
        return e.request(l.id).state == RequestState::Entitled ||
               e.request(l.id).state == RequestState::Satisfied;
      default:
        return e.request(l.id).state == RequestState::Satisfied;
    }
  };

  while (issued < kSteps || !live.empty()) {
    // Finish one runnable op with some probability, else issue.
    int runnable = -1;
    for (std::size_t i = 0; i < live.size(); ++i)
      if (current_satisfied(live[i])) runnable = static_cast<int>(i);
    const bool can_issue = issued < kSteps && live.size() < kM;
    if (runnable >= 0 && (!can_issue || rng.chance(0.55))) {
      Live l = live[static_cast<std::size_t>(runnable)];
      t += rng.uniform(0.01, 0.3);
      if (l.kind == 3 && l.stage == 0) {
        if (e.request(l.pair.read_part).state == RequestState::Satisfied) {
          const bool upgrade = rng.chance(0.5);
          e.finish_read_segment(t, l.pair, upgrade);
          if (upgrade) {
            live[static_cast<std::size_t>(runnable)].stage = 1;
            continue;
          }
        } else {
          // Write half won: complete it.
          e.complete(t, l.pair.write_part);
        }
        live.erase(live.begin() + runnable);
        ++finished;
        continue;
      }
      if (l.kind == 3) {
        e.complete(t, l.pair.write_part);
      } else if (l.kind == 4) {
        if (rng.chance(0.5) && !e.holds(l.id).test(
                static_cast<ResourceId>(rng.next_below(kQ)))) {
          // Ask for one more declared resource sometimes.
          ResourceSet extra(kQ);
          const auto want = e.request(l.id).domain.to_vector();
          extra.set(want[rng.next_below(want.size())]);
          e.request_more(t, l.id, extra);
        }
        e.complete(t, l.id);
      } else {
        e.complete(t, l.id);
      }
      live.erase(live.begin() + runnable);
      ++finished;
      continue;
    }
    ASSERT_TRUE(can_issue) << "stalled at t=" << t;
    t += rng.uniform(0.01, 0.3);
    Live l;
    const int kind = static_cast<int>(rng.next_below(5));
    l.kind = kind;
    switch (kind) {
      case 0:
        l.id = e.issue_read(
            t, read_patterns[rng.next_below(read_patterns.size())]);
        break;
      case 1: {
        ResourceSet w(kQ);
        w.set(static_cast<ResourceId>(rng.next_below(kQ)));
        l.id = e.issue_write(t, w);
        break;
      }
      case 2: {
        ResourceSet w(kQ), r(kQ);
        w.set(static_cast<ResourceId>(rng.next_below(kQ)));
        r = read_patterns[rng.next_below(read_patterns.size())];
        r -= w;
        if (r.empty()) {
          l.kind = 1;
          l.id = e.issue_write(t, w);
        } else {
          l.id = e.issue_mixed(t, r, w);
        }
        break;
      }
      case 3:
        l.pair = e.issue_upgradeable(
            t, read_patterns[rng.next_below(read_patterns.size())]);
        break;
      case 4: {
        ResourceSet pw(kQ);
        pw.set(static_cast<ResourceId>(rng.next_below(kQ)));
        ResourceSet initial(kQ);
        if (rng.chance(0.7)) initial = pw;
        l.id = e.issue_incremental(t, ResourceSet(kQ), pw, initial);
        break;
      }
    }
    live.push_back(l);
    ++issued;
  }
  EXPECT_EQ(finished, kSteps);
  EXPECT_TRUE(e.incomplete_requests().empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllFeaturesStress,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace rwrnlp::rsm
