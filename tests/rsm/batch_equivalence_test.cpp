// Equivalence of Engine::apply_batch with the classic one-invocation-at-a-
// time API.
//
// The flat-combining broker batches invocations, and apply_batch's contract
// (engine.hpp) is that a batch reaches *exactly* the state and trace of the
// equivalent sequence of sequential invocations.  These tests pin that
// contract down:
//
//  * the counterexample that makes naive end-of-batch deferral unsound is
//    exercised explicitly (a read and a conflicting write in one batch);
//  * randomized mixed workloads (reads / writes / mixed / completes /
//    cancels), chopped into random batch sizes, must produce byte-identical
//    traces against a sequentially driven twin engine, under both write
//    expansion modes and with full invariant validation on;
//  * a BatchSink veto (the front ends' load-shedding hook) must skip the
//    vetoed invocation and apply the rest untouched.
#include <gtest/gtest.h>

#include <vector>

#include "rsm/engine.hpp"
#include "util/rng.hpp"

namespace rwrnlp::rsm {
namespace {

constexpr std::size_t kQ = 8;

EngineOptions traced_options(WriteExpansion expansion) {
  EngineOptions o;
  o.expansion = expansion;
  o.validate = true;
  o.record_trace = true;
  return o;
}

Invocation issue_read_inv(Time t, const ResourceSet& reads) {
  Invocation inv;
  inv.kind = Invocation::Kind::IssueRead;
  inv.t = t;
  inv.reads = reads;
  return inv;
}

Invocation issue_write_inv(Time t, const ResourceSet& writes) {
  Invocation inv;
  inv.kind = Invocation::Kind::IssueWrite;
  inv.t = t;
  inv.writes = writes;
  return inv;
}

void apply(Engine& e, std::vector<Invocation>& batch, BatchSink* sink = nullptr) {
  std::vector<Invocation*> ptrs;
  for (Invocation& inv : batch) ptrs.push_back(&inv);
  e.apply_batch(ptrs.data(), ptrs.size(), sink);
}

// The soundness counterexample from engine.cpp: batching [read l0, write l0]
// and deferring all transitions to one end-of-batch fixpoint would entitle
// the write first (it is the earliest-ts head of WQ(l0) at fixpoint time)
// and satisfy the WRONG request.  apply_batch must instead satisfy the read
// at its own timestamp and leave the write entitled-but-blocked, exactly
// like the sequential engine.
TEST(BatchEquivalence, DeferralCounterexampleReadThenWrite) {
  for (const WriteExpansion exp :
       {WriteExpansion::ExpandDomain, WriteExpansion::Placeholders}) {
    Engine seq(kQ, traced_options(exp));
    const RequestId r = seq.issue_read(1.0, ResourceSet(kQ, {0}));
    const RequestId w = seq.issue_write(2.0, ResourceSet(kQ, {0}));
    ASSERT_TRUE(seq.is_satisfied(r));
    ASSERT_FALSE(seq.is_satisfied(w));

    Engine bat(kQ, traced_options(exp));
    std::vector<Invocation> batch{
        issue_read_inv(1.0, ResourceSet(kQ, {0})),
        issue_write_inv(2.0, ResourceSet(kQ, {0})),
    };
    apply(bat, batch);
    EXPECT_EQ(batch[0].id, r);
    EXPECT_EQ(batch[1].id, w);
    EXPECT_TRUE(batch[0].satisfied);
    EXPECT_FALSE(batch[1].satisfied);
    EXPECT_EQ(format_trace(bat.trace()), format_trace(seq.trace()));
  }
}

// A whole acquire/release round trip in one batch: issue read, issue
// conflicting write, complete the read (promoting the write), complete the
// write.  Exercises both the contended-completion fixpoint and the
// contention-free completion fast path inside a single apply_batch call.
TEST(BatchEquivalence, CompletesInsideOneBatch) {
  Engine seq(kQ, traced_options(WriteExpansion::ExpandDomain));
  const RequestId r = seq.issue_read(1.0, ResourceSet(kQ, {2, 3}));
  const RequestId w = seq.issue_write(2.0, ResourceSet(kQ, {3}));
  seq.complete(3.0, r);
  ASSERT_TRUE(seq.is_satisfied(w));
  seq.complete(4.0, w);

  Engine bat(kQ, traced_options(WriteExpansion::ExpandDomain));
  std::vector<Invocation> batch{
      issue_read_inv(1.0, ResourceSet(kQ, {2, 3})),
      issue_write_inv(2.0, ResourceSet(kQ, {3})),
  };
  apply(bat, batch);
  Invocation complete_r;
  complete_r.kind = Invocation::Kind::Complete;
  complete_r.t = 3.0;
  complete_r.id = batch[0].id;
  Invocation complete_w;
  complete_w.kind = Invocation::Kind::Complete;
  complete_w.t = 4.0;
  complete_w.id = batch[1].id;
  std::vector<Invocation> batch2{complete_r, complete_w};
  apply(bat, batch2);
  EXPECT_EQ(format_trace(bat.trace()), format_trace(seq.trace()));
}

class BatchReplay : public ::testing::TestWithParam<WriteExpansion> {};

// Random mixed workloads chopped into random batch sizes.  Every candidate
// invocation is first applied to the sequential twin (which both keeps the
// two engines in lock-step and lets the generator pick only *legal*
// completes/cancels), then the recorded batch goes through apply_batch on
// the batched engine.  Traces, request ids, and satisfied-at-issue outcomes
// must match exactly; validation is on, so every batched invocation also
// passes the engine's internal invariant sweep and — in validate mode — the
// assert_fixpoint_quiescent oracle that re-runs the full fixpoint after
// each targeted transition.
TEST_P(BatchReplay, RandomBatchesMatchSequential) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    Engine seq(kQ, traced_options(GetParam()));
    Engine bat(kQ, traced_options(GetParam()));
    Rng rng(seed);
    std::vector<RequestId> live;
    Time t = 0;
    for (int round = 0; round < 60; ++round) {
      const std::size_t batch_size = 1 + rng.next_below(5);
      std::vector<Invocation> batch;
      // Sequential twin's outcome per issuance, recorded at generation time:
      // a later invocation in the same batch may complete or promote an
      // earlier one, so post-batch is_satisfied() is NOT the satisfied-at-
      // issue value apply_batch must report.
      std::vector<std::pair<RequestId, bool>> expected;
      for (std::size_t i = 0; i < batch_size; ++i) {
        t += 1.0;
        const std::uint64_t kind = rng.next_below(10);
        Invocation inv;
        inv.t = t;
        if (kind < 4) {  // read
          ResourceSet rs(kQ);
          const std::size_t n = 1 + rng.next_below(3);
          for (std::size_t j = 0; j < n; ++j)
            rs.set(static_cast<ResourceId>(rng.next_below(kQ)));
          inv.kind = Invocation::Kind::IssueRead;
          inv.reads = rs;
          live.push_back(seq.issue_read(t, rs));
        } else if (kind < 6) {  // write
          ResourceSet rs(kQ, {static_cast<ResourceId>(rng.next_below(kQ))});
          inv.kind = Invocation::Kind::IssueWrite;
          inv.writes = rs;
          live.push_back(seq.issue_write(t, rs));
        } else if (kind < 7) {  // mixed, reads and writes disjoint
          ResourceSet writes(kQ,
                             {static_cast<ResourceId>(rng.next_below(kQ))});
          ResourceSet reads(kQ,
                            {static_cast<ResourceId>(rng.next_below(kQ))});
          reads -= writes;
          if (reads.empty()) {
            inv.kind = Invocation::Kind::IssueWrite;
            inv.writes = writes;
            live.push_back(seq.issue_write(t, writes));
          } else {
            inv.kind = Invocation::Kind::IssueMixed;
            inv.reads = reads;
            inv.writes = writes;
            live.push_back(seq.issue_mixed(t, reads, writes));
          }
        } else if (kind < 9) {  // complete a satisfied request, if any
          RequestId victim = kNoRequest;
          for (std::size_t j = 0; j < live.size(); ++j) {
            const std::size_t idx = (j + rng.next_below(live.size())) %
                                    live.size();
            if (seq.is_satisfied(live[idx])) {
              victim = live[idx];
              live.erase(live.begin() +
                         static_cast<std::ptrdiff_t>(idx));
              break;
            }
          }
          if (victim == kNoRequest) continue;
          inv.kind = Invocation::Kind::Complete;
          inv.id = victim;
          seq.complete(t, victim);
        } else {  // cancel an unsatisfied request, if any
          RequestId victim = kNoRequest;
          for (std::size_t j = 0; j < live.size(); ++j) {
            const std::size_t idx = (j + rng.next_below(live.size())) %
                                    live.size();
            if (!seq.is_satisfied(live[idx])) {
              victim = live[idx];
              live.erase(live.begin() +
                         static_cast<std::ptrdiff_t>(idx));
              break;
            }
          }
          if (victim == kNoRequest) continue;
          inv.kind = Invocation::Kind::Cancel;
          inv.id = victim;
          seq.cancel(t, victim);
        }
        if (inv.kind != Invocation::Kind::Complete &&
            inv.kind != Invocation::Kind::Cancel)
          expected.emplace_back(live.back(), seq.is_satisfied(live.back()));
        else
          expected.emplace_back(kNoRequest, false);
        batch.push_back(inv);
      }
      apply(bat, batch);
      // Issued ids and satisfied-at-issue outcomes must line up with the
      // sequential twin's.
      for (std::size_t i = 0; i < batch.size(); ++i) {
        const Invocation& inv = batch[i];
        if (inv.kind == Invocation::Kind::Complete ||
            inv.kind == Invocation::Kind::Cancel)
          continue;
        ASSERT_EQ(inv.id, expected[i].first);
        EXPECT_EQ(inv.satisfied, expected[i].second);
      }
    }
    // Drain both engines and do the byte-level comparison.
    while (!live.empty()) {
      t += 1.0;
      bool progressed = false;
      for (std::size_t i = 0; i < live.size(); ++i) {
        if (seq.is_satisfied(live[i])) {
          seq.complete(t, live[i]);
          Invocation inv;
          inv.kind = Invocation::Kind::Complete;
          inv.t = t;
          inv.id = live[i];
          std::vector<Invocation> batch{inv};
          apply(bat, batch);
          live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
          progressed = true;
          break;
        }
      }
      ASSERT_TRUE(progressed) << "deadlock in drain, seed " << seed;
    }
    EXPECT_EQ(format_trace(bat.trace()), format_trace(seq.trace()))
        << "trace divergence at seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(BothExpansions, BatchReplay,
                         ::testing::Values(WriteExpansion::ExpandDomain,
                                           WriteExpansion::Placeholders));

// A sink veto (load shedding in the front ends) must skip exactly the
// vetoed invocation: nothing is issued for it, and the rest of the batch
// applies as if it were never there.
TEST(BatchEquivalence, SinkVetoSkipsInvocation) {
  struct VetoSecond final : BatchSink {
    bool before(Invocation& inv, std::size_t index) override {
      (void)inv;
      return index != 1;
    }
  };
  Engine seq(kQ, traced_options(WriteExpansion::ExpandDomain));
  const RequestId a = seq.issue_read(1.0, ResourceSet(kQ, {0}));
  const RequestId c = seq.issue_read(3.0, ResourceSet(kQ, {2}));

  Engine bat(kQ, traced_options(WriteExpansion::ExpandDomain));
  std::vector<Invocation> batch{
      issue_read_inv(1.0, ResourceSet(kQ, {0})),
      issue_write_inv(2.0, ResourceSet(kQ, {1})),  // vetoed
      issue_read_inv(3.0, ResourceSet(kQ, {2})),
  };
  VetoSecond sink;
  apply(bat, batch, &sink);
  EXPECT_EQ(batch[0].id, a);
  EXPECT_EQ(batch[1].id, kNoRequest);  // never issued
  EXPECT_EQ(batch[2].id, c);
  EXPECT_EQ(format_trace(bat.trace()), format_trace(seq.trace()));
}

// The sink's before/after hooks see invocations in batch order and after()
// observes the filled-in results (the front ends hang their logging and
// waiter registration off exactly this).
TEST(BatchEquivalence, SinkSeesResultsInOrder) {
  struct Recorder final : BatchSink {
    std::vector<std::size_t> before_idx, after_idx;
    std::vector<bool> after_satisfied;
    bool before(Invocation& inv, std::size_t index) override {
      (void)inv;
      before_idx.push_back(index);
      return true;
    }
    void after(Invocation& inv, std::size_t index) override {
      after_idx.push_back(index);
      after_satisfied.push_back(inv.satisfied);
    }
  };
  Engine bat(kQ, traced_options(WriteExpansion::ExpandDomain));
  std::vector<Invocation> batch{
      issue_write_inv(1.0, ResourceSet(kQ, {0})),
      issue_write_inv(2.0, ResourceSet(kQ, {0})),  // queued behind the first
  };
  Recorder sink;
  apply(bat, batch, &sink);
  EXPECT_EQ(sink.before_idx, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(sink.after_idx, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(sink.after_satisfied, (std::vector<bool>{true, false}));
}

}  // namespace
}  // namespace rwrnlp::rsm
