// Differential test: on a single resource the R/W RNLP must degenerate to
// a *phase-fair* reader/writer lock (Sec. 3: "Like phase-fair locks, the
// queue from which requests are satisfied alternates"; the single-resource
// case has no inconsistent-phases problem, so the semantics coincide).
//
// We drive the RSM engine and an independently written phase-fair
// reference model with identical random request sequences and assert that
// the sets of satisfied requests are identical after every invocation.
//
// Reference semantics (Brandenburg & Anderson, RTSJ 2010):
//  * writers are FIFO among themselves;
//  * a reader is admitted immediately unless a writer is present
//    (holding, or head-of-queue waiting while the resource is read-held);
//  * when the resource frees up, the next writer enters; when a writer
//    leaves, ALL currently queued readers enter (one read phase).
#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <set>
#include <vector>

#include "rsm/engine.hpp"
#include "util/rng.hpp"

namespace rwrnlp::rsm {
namespace {

/// An independent phase-fair R/W lock model (ids are the engine's request
/// ids so the two runs can be compared directly).
class PhaseFairReference {
 public:
  void issue_read(RequestId id) {
    if (writer_holding_ == kNoRequest && !writer_pending()) {
      readers_holding_.insert(id);
    } else {
      read_queue_.push_back(id);
    }
  }

  void issue_write(RequestId id) {
    write_queue_.push_back(id);
    try_admit_writer();
  }

  void complete(RequestId id) {
    if (writer_holding_ == id) {
      writer_holding_ = kNoRequest;
      // End of write phase: admit the whole pending read phase first...
      admit_all_readers();
      // ...and if there were no readers, the next writer.
      try_admit_writer();
      return;
    }
    readers_holding_.erase(id);
    try_admit_writer();
  }

  std::set<RequestId> satisfied() const {
    std::set<RequestId> s = readers_holding_;
    if (writer_holding_ != kNoRequest) s.insert(writer_holding_);
    return s;
  }

 private:
  bool writer_pending() const { return !write_queue_.empty(); }

  void try_admit_writer() {
    if (writer_holding_ != kNoRequest || write_queue_.empty()) return;
    if (!readers_holding_.empty()) return;  // wait for the read phase
    writer_holding_ = write_queue_.front();
    write_queue_.pop_front();
  }

  void admit_all_readers() {
    for (RequestId id : read_queue_) readers_holding_.insert(id);
    read_queue_.clear();
  }

  std::set<RequestId> readers_holding_;
  RequestId writer_holding_ = kNoRequest;
  std::deque<RequestId> write_queue_;
  std::deque<RequestId> read_queue_;
};

std::set<RequestId> engine_satisfied(const Engine& e) {
  std::set<RequestId> s;
  for (RequestId id : e.incomplete_requests())
    if (e.is_satisfied(id)) s.insert(id);
  return s;
}

class PfDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PfDifferential, SingleResourceRsmEqualsPhaseFairLock) {
  EngineOptions opt;
  opt.validate = true;
  Engine engine(1, opt);
  PhaseFairReference ref;
  Rng rng(GetParam());

  std::vector<RequestId> live;
  double t = 0;
  std::size_t divergences = 0;

  for (int step = 0; step < 800; ++step) {
    t += 1;
    const bool can_issue = live.size() < 8;
    const bool do_issue = can_issue && (live.empty() || rng.chance(0.55));
    if (do_issue) {
      const bool is_read = rng.chance(0.6);
      RequestId id;
      if (is_read) {
        id = engine.issue_read(t, ResourceSet(1, {0}));
        ref.issue_read(id);
      } else {
        id = engine.issue_write(t, ResourceSet(1, {0}));
        ref.issue_write(id);
      }
      live.push_back(id);
    } else {
      // Complete a random currently-satisfied request (both models must
      // agree on what is satisfied, so using the engine's view is fair).
      std::vector<RequestId> sat;
      for (RequestId id : live)
        if (engine.is_satisfied(id)) sat.push_back(id);
      ASSERT_FALSE(sat.empty()) << "liveness failure at step " << step;
      const RequestId victim = sat[rng.next_below(sat.size())];
      engine.complete(t, victim);
      ref.complete(victim);
      live.erase(std::find(live.begin(), live.end(), victim));
    }
    const auto a = engine_satisfied(engine);
    const auto b = ref.satisfied();
    if (a != b) ++divergences;
    ASSERT_EQ(a, b) << "divergence at step " << step;
  }
  EXPECT_EQ(divergences, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PfDifferential,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88,
                                           99, 111));

}  // namespace
}  // namespace rwrnlp::rsm
