// Determinism and trace tests: identical invocation sequences must produce
// identical engine behavior (satisfaction order, traces, queue states) —
// the property that makes simulation results and experiments reproducible.
#include <gtest/gtest.h>

#include "rsm/engine.hpp"
#include "util/rng.hpp"

namespace rwrnlp::rsm {
namespace {

struct Replay {
  std::vector<TraceEvent> trace;
  std::vector<double> satisfaction_times;
};

Replay run_once(std::uint64_t seed) {
  EngineOptions opt;
  opt.record_trace = true;
  opt.validate = true;
  ReadShareTable shares(4);
  shares.declare_read_request(ResourceSet(4, {0, 1}));
  Engine e(4, shares, opt);
  Rng rng(seed);

  std::vector<RequestId> live;
  std::vector<RequestId> all;
  double t = 0;
  for (int step = 0; step < 300; ++step) {
    t += 1;
    if (live.size() < 5 && (live.empty() || rng.chance(0.5))) {
      ResourceSet rs(4);
      for (std::size_t idx : rng.sample_indices(4, 1 + rng.next_below(2)))
        rs.set(static_cast<ResourceId>(idx));
      const RequestId id = rng.chance(0.5) ? e.issue_read(t, rs)
                                           : e.issue_write(t, rs);
      live.push_back(id);
      all.push_back(id);
    } else {
      std::vector<RequestId> sat;
      for (RequestId id : live)
        if (e.is_satisfied(id)) sat.push_back(id);
      const RequestId victim = sat[rng.next_below(sat.size())];
      e.complete(t, victim);
      live.erase(std::find(live.begin(), live.end(), victim));
    }
  }
  Replay r;
  r.trace = e.trace();
  for (RequestId id : all)
    r.satisfaction_times.push_back(e.request(id).satisfied_time);
  return r;
}

TEST(Determinism, IdenticalRunsProduceIdenticalTraces) {
  const Replay a = run_once(424242);
  const Replay b = run_once(424242);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].kind, b.trace[i].kind) << "event " << i;
    EXPECT_EQ(a.trace[i].request, b.trace[i].request) << "event " << i;
    EXPECT_DOUBLE_EQ(a.trace[i].time, b.trace[i].time) << "event " << i;
  }
  EXPECT_EQ(a.satisfaction_times, b.satisfaction_times);
}

TEST(Determinism, DifferentSeedsDiffer) {
  const Replay a = run_once(1);
  const Replay b = run_once(2);
  EXPECT_NE(a.trace.size(), 0u);
  // Traces differ somewhere (different request mixes).
  bool differ = a.trace.size() != b.trace.size();
  for (std::size_t i = 0; !differ && i < a.trace.size(); ++i)
    differ = a.trace[i].kind != b.trace[i].kind ||
             a.trace[i].request != b.trace[i].request;
  EXPECT_TRUE(differ);
}

TEST(Trace, EventsAreTimeOrderedAndWellFormed) {
  const Replay a = run_once(77);
  double prev = -1;
  for (const auto& ev : a.trace) {
    EXPECT_GE(ev.time, prev);
    prev = ev.time;
    EXPECT_NE(ev.request, kNoRequest);
  }
  // Every satisfied event is preceded by an issue of the same request.
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    if (a.trace[i].kind != TraceKind::Satisfied) continue;
    bool issued = false;
    for (std::size_t j = 0; j < i; ++j)
      if (a.trace[j].kind == TraceKind::Issue &&
          a.trace[j].request == a.trace[i].request)
        issued = true;
    EXPECT_TRUE(issued) << "satisfied before issue at event " << i;
  }
}

TEST(Trace, FormattingContainsKindsAndResources) {
  Engine e(2, [] {
    EngineOptions o;
    o.record_trace = true;
    return o;
  }());
  const RequestId w = e.issue_write(1, ResourceSet(2, {0}));
  const RequestId r = e.issue_read(2, ResourceSet(2, {0, 1}));
  e.complete(3, w);
  e.complete(4, r);
  const std::string text = format_trace(e.trace());
  EXPECT_NE(text.find("issue"), std::string::npos);
  EXPECT_NE(text.find("satisfied"), std::string::npos);
  EXPECT_NE(text.find("entitled"), std::string::npos);
  EXPECT_NE(text.find("complete"), std::string::npos);
  EXPECT_NE(text.find("{l0, l1}"), std::string::npos);
  EXPECT_NE(text.find("(write)"), std::string::npos);
  EXPECT_NE(text.find("(read)"), std::string::npos);
}

TEST(Trace, ClearTraceEmptiesLog) {
  EngineOptions o;
  o.record_trace = true;
  Engine e(1, o);
  const RequestId w = e.issue_write(1, ResourceSet(1, {0}));
  EXPECT_FALSE(e.trace().empty());
  e.clear_trace();
  EXPECT_TRUE(e.trace().empty());
  e.complete(2, w);
}

}  // namespace
}  // namespace rwrnlp::rsm
