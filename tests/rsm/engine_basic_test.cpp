// Rule-by-rule unit tests of the RSM on small hand-built scenarios.
#include "rsm/engine.hpp"

#include <gtest/gtest.h>

#include "rsm/invariants.hpp"
#include "util/assert.hpp"

namespace rwrnlp::rsm {
namespace {

EngineOptions validated() {
  EngineOptions o;
  o.validate = true;
  o.record_trace = true;
  return o;
}

TEST(EngineBasic, ReadSatisfiedImmediatelyInIdleSystem) {
  Engine e(4, validated());
  const RequestId r = e.issue_read(1, ResourceSet(4, {0, 2}));
  EXPECT_TRUE(e.is_satisfied(r));
  EXPECT_EQ(e.holds(r), ResourceSet(4, {0, 2}));
  EXPECT_TRUE(e.read_locked(0));
  EXPECT_TRUE(e.read_locked(2));
  EXPECT_FALSE(e.read_locked(1));
}

TEST(EngineBasic, WriteSatisfiedImmediatelyInIdleSystem) {
  Engine e(4, validated());
  const RequestId w = e.issue_write(1, ResourceSet(4, {1, 3}));
  EXPECT_TRUE(e.is_satisfied(w));
  EXPECT_EQ(e.write_holder(1), w);
  EXPECT_EQ(e.write_holder(3), w);
}

TEST(EngineBasic, ManyConcurrentReadersOnOneResource) {
  Engine e(1, validated());
  std::vector<RequestId> readers;
  for (int i = 0; i < 16; ++i) {
    readers.push_back(e.issue_read(i + 1, ResourceSet(1, {0})));
    EXPECT_TRUE(e.is_satisfied(readers.back()));
  }
  EXPECT_EQ(e.read_holders(0).size(), 16u);
  for (int i = 0; i < 16; ++i) e.complete(100 + i, readers[i]);
  EXPECT_FALSE(e.read_locked(0));
}

TEST(EngineBasic, WritersAreMutuallyExclusiveAndFifo) {
  Engine e(1, validated());
  ProtocolObserver obs(e);
  const RequestId w1 = e.issue_write(1, ResourceSet(1, {0}));
  obs.after_invocation(InvocationKind::WriteIssue);
  const RequestId w2 = e.issue_write(2, ResourceSet(1, {0}));
  obs.after_invocation(InvocationKind::WriteIssue);
  const RequestId w3 = e.issue_write(3, ResourceSet(1, {0}));
  obs.after_invocation(InvocationKind::WriteIssue);
  EXPECT_TRUE(e.is_satisfied(w1));
  EXPECT_EQ(e.state(w2), RequestState::Waiting);
  EXPECT_EQ(e.state(w3), RequestState::Waiting);

  e.complete(4, w1);
  obs.after_invocation(InvocationKind::WriteComplete);
  EXPECT_TRUE(e.is_satisfied(w2));
  EXPECT_EQ(e.state(w3), RequestState::Waiting);

  e.complete(5, w2);
  obs.after_invocation(InvocationKind::WriteComplete);
  EXPECT_TRUE(e.is_satisfied(w3));
  e.complete(6, w3);
  obs.after_invocation(InvocationKind::WriteComplete);
}

TEST(EngineBasic, ReaderBlockedByWriterBecomesEntitledThenSatisfied) {
  Engine e(2, validated());
  const RequestId w = e.issue_write(1, ResourceSet(2, {0}));
  const RequestId r = e.issue_read(2, ResourceSet(2, {0, 1}));
  // Def. 3: l0 is write locked, WQ(l0) and WQ(l1) are empty => entitled.
  EXPECT_EQ(e.state(r), RequestState::Entitled);
  EXPECT_EQ(e.blockers(r), std::vector<RequestId>{w});
  e.complete(3, w);
  EXPECT_TRUE(e.is_satisfied(r));
}

TEST(EngineBasic, ReaderCutsAheadOfNonEntitledWriter) {
  // A reader may overtake a waiting writer that is not entitled (Rule R1);
  // this is the t = 3 step of the paper's running example in isolation.
  Engine e(2, validated());
  const RequestId w1 = e.issue_write(1, ResourceSet(2, {0}));
  const RequestId w2 = e.issue_write(2, ResourceSet(2, {0, 1}));
  ASSERT_EQ(e.state(w2), RequestState::Waiting);  // l0 write locked
  const RequestId r = e.issue_read(3, ResourceSet(2, {1}));
  EXPECT_TRUE(e.is_satisfied(r));
  e.complete(4, w1);
  // Now w2 is entitled; it waits for the reader.
  EXPECT_EQ(e.state(w2), RequestState::Entitled);
  EXPECT_EQ(e.blockers(w2), std::vector<RequestId>{r});
  e.complete(5, r);
  EXPECT_TRUE(e.is_satisfied(w2));
  e.complete(6, w2);
}

TEST(EngineBasic, ReaderDoesNotCutAheadOfEntitledWriter) {
  // Phase-fairness: once a writer is entitled, later readers wait (reads
  // concede to writes).
  Engine e(2, validated());
  const RequestId r1 = e.issue_read(1, ResourceSet(2, {0}));
  const RequestId w = e.issue_write(2, ResourceSet(2, {0, 1}));
  ASSERT_EQ(e.state(w), RequestState::Entitled);  // blocked only by r1
  const RequestId r2 = e.issue_read(3, ResourceSet(2, {1}));
  EXPECT_EQ(e.state(r2), RequestState::Waiting);
  e.complete(4, r1);
  EXPECT_TRUE(e.is_satisfied(w));
  // Once the writer is satisfied the reader becomes entitled (Def. 3), just
  // like R^r_{5,1} at t = 8 in Fig. 2.
  EXPECT_EQ(e.state(r2), RequestState::Entitled);
  e.complete(5, w);
  EXPECT_TRUE(e.is_satisfied(r2));
  e.complete(6, r2);
}

TEST(EngineBasic, EntitledWriterBlocksNewReadersEverywhere) {
  // An entitled writer protects *all* resources in its domain, not only the
  // ones currently locked — the essence of avoiding inconsistent phases.
  Engine e(3, validated());
  const RequestId r1 = e.issue_read(1, ResourceSet(3, {0}));
  const RequestId w = e.issue_write(2, ResourceSet(3, {0, 1, 2}));
  ASSERT_EQ(e.state(w), RequestState::Entitled);
  const RequestId r2 = e.issue_read(3, ResourceSet(3, {2}));
  EXPECT_EQ(e.state(r2), RequestState::Waiting);
  e.complete(4, r1);
  EXPECT_TRUE(e.is_satisfied(w));
  e.complete(5, w);
  EXPECT_TRUE(e.is_satisfied(r2));
  e.complete(6, r2);
}

TEST(EngineBasic, DisjointRequestsProceedConcurrently) {
  Engine e(4, validated());
  const RequestId w1 = e.issue_write(1, ResourceSet(4, {0}));
  const RequestId w2 = e.issue_write(2, ResourceSet(4, {1}));
  const RequestId r1 = e.issue_read(3, ResourceSet(4, {2}));
  const RequestId r2 = e.issue_read(4, ResourceSet(4, {3}));
  EXPECT_TRUE(e.is_satisfied(w1));
  EXPECT_TRUE(e.is_satisfied(w2));
  EXPECT_TRUE(e.is_satisfied(r1));
  EXPECT_TRUE(e.is_satisfied(r2));
  e.complete(5, w1);
  e.complete(5, w2);
  e.complete(5, r1);
  e.complete(5, r2);
}

TEST(EngineBasic, PhaseAlternationOnOneResource) {
  // With a standing population of readers and writers, satisfaction must
  // alternate: read phase, one writer, read phase, one writer ...
  Engine e(1, validated());
  ProtocolObserver obs(e);
  const RequestId r1 = e.issue_read(1, ResourceSet(1, {0}));
  obs.after_invocation(InvocationKind::ReadIssue);
  const RequestId w1 = e.issue_write(2, ResourceSet(1, {0}));
  obs.after_invocation(InvocationKind::WriteIssue);
  const RequestId r2 = e.issue_read(3, ResourceSet(1, {0}));
  obs.after_invocation(InvocationKind::ReadIssue);
  const RequestId w2 = e.issue_write(4, ResourceSet(1, {0}));
  obs.after_invocation(InvocationKind::WriteIssue);
  const RequestId r3 = e.issue_read(5, ResourceSet(1, {0}));
  obs.after_invocation(InvocationKind::ReadIssue);

  ASSERT_TRUE(e.is_satisfied(r1));
  ASSERT_EQ(e.state(w1), RequestState::Entitled);
  ASSERT_EQ(e.state(r2), RequestState::Waiting);

  e.complete(6, r1);  // -> write phase: w1
  obs.after_invocation(InvocationKind::ReadComplete);
  EXPECT_TRUE(e.is_satisfied(w1));
  EXPECT_EQ(e.state(r2), RequestState::Entitled);

  e.complete(7, w1);  // -> read phase: r2 AND r3 together
  obs.after_invocation(InvocationKind::WriteComplete);
  EXPECT_TRUE(e.is_satisfied(r2));
  EXPECT_TRUE(e.is_satisfied(r3));
  EXPECT_EQ(e.state(w2), RequestState::Entitled);

  e.complete(8, r2);
  obs.after_invocation(InvocationKind::ReadComplete);
  EXPECT_EQ(e.state(w2), RequestState::Entitled);
  e.complete(9, r3);  // -> write phase: w2
  obs.after_invocation(InvocationKind::ReadComplete);
  EXPECT_TRUE(e.is_satisfied(w2));
  e.complete(10, w2);
  obs.after_invocation(InvocationKind::WriteComplete);
}

TEST(EngineBasic, LaterReadersJoinAnOpenReadPhase) {
  // While no writer is entitled, new readers are satisfied immediately even
  // if a read phase is in progress.
  Engine e(1, validated());
  const RequestId r1 = e.issue_read(1, ResourceSet(1, {0}));
  const RequestId r2 = e.issue_read(2, ResourceSet(1, {0}));
  EXPECT_TRUE(e.is_satisfied(r1));
  EXPECT_TRUE(e.is_satisfied(r2));
  e.complete(3, r1);
  e.complete(3, r2);
}

TEST(EngineBasic, BlockersForWaitingRequestAreConflictingHolders) {
  Engine e(2, validated());
  const RequestId r = e.issue_read(1, ResourceSet(2, {0}));
  const RequestId w = e.issue_write(2, ResourceSet(2, {0, 1}));
  EXPECT_EQ(e.blockers(w), std::vector<RequestId>{r});
  EXPECT_TRUE(e.blockers(r).empty());  // satisfied: nothing blocks it
  e.complete(3, r);
  e.complete(4, w);
}

TEST(EngineBasic, TimesAreRecorded) {
  Engine e(1, validated());
  const RequestId w1 = e.issue_write(1, ResourceSet(1, {0}));
  const RequestId w2 = e.issue_write(2, ResourceSet(1, {0}));
  e.complete(5, w1);
  e.complete(9, w2);
  const Request& q1 = e.request(w1);
  EXPECT_DOUBLE_EQ(q1.issue_time, 1);
  EXPECT_DOUBLE_EQ(q1.satisfied_time, 1);
  EXPECT_DOUBLE_EQ(q1.complete_time, 5);
  const Request& q2 = e.request(w2);
  EXPECT_DOUBLE_EQ(q2.issue_time, 2);
  EXPECT_DOUBLE_EQ(q2.satisfied_time, 5);
  EXPECT_DOUBLE_EQ(q2.acquisition_delay(), 3);
}

TEST(EngineBasic, SatisfiedCallbackFires) {
  Engine e(1, validated());
  std::vector<std::pair<RequestId, Time>> fired;
  e.set_satisfied_callback(
      [&](RequestId id, Time t) { fired.emplace_back(id, t); });
  const RequestId w1 = e.issue_write(1, ResourceSet(1, {0}));
  const RequestId w2 = e.issue_write(2, ResourceSet(1, {0}));
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].first, w1);
  e.complete(7, w1);
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[1].first, w2);
  EXPECT_DOUBLE_EQ(fired[1].second, 7);
  e.complete(8, w2);
}

TEST(EngineBasic, TraceRecordsLifecycle) {
  Engine e(1, validated());
  const RequestId w1 = e.issue_write(1, ResourceSet(1, {0}));
  const RequestId w2 = e.issue_write(2, ResourceSet(1, {0}));
  e.complete(3, w1);
  e.complete(4, w2);
  const auto& tr = e.trace();
  // w1: issue+entitled+satisfied+complete; w2: issue, then
  // entitled+satisfied at t=3, complete at t=4.
  ASSERT_GE(tr.size(), 7u);
  EXPECT_EQ(tr.front().kind, TraceKind::Issue);
  EXPECT_EQ(tr.front().request, w1);
  EXPECT_EQ(tr.back().kind, TraceKind::Complete);
  EXPECT_EQ(tr.back().request, w2);
  EXPECT_FALSE(format_trace(tr).empty());
}

TEST(EngineBasic, ApiErrorsAreRejected) {
  Engine e(2, validated());
  EXPECT_THROW(e.issue_read(1, ResourceSet(2)), std::invalid_argument);
  EXPECT_THROW(e.issue_write(1, ResourceSet(2)), std::invalid_argument);
  const RequestId w = e.issue_write(1, ResourceSet(2, {0}));
  EXPECT_THROW(e.issue_write(0.5, ResourceSet(2, {1})),
               std::invalid_argument);  // time went backwards
  const RequestId w2 = e.issue_write(2, ResourceSet(2, {0}));
  EXPECT_THROW(e.complete(3, w2), std::invalid_argument);  // not satisfied
  e.complete(3, w);
  EXPECT_THROW(e.complete(4, w), std::invalid_argument);  // already complete
  e.complete(4, w2);
}

TEST(EngineBasic, SlotRecyclingWhenHistoryDisabled) {
  EngineOptions o;
  o.retain_history = false;
  Engine e(1, o);
  const RequestId first = e.issue_write(1, ResourceSet(1, {0}));
  e.complete(2, first);
  const RequestId second = e.issue_write(3, ResourceSet(1, {0}));
  EXPECT_EQ(second, first);  // slot reused
  e.complete(4, second);
}

TEST(EngineBasic, HistoryRetainedByDefault) {
  Engine e(1, validated());
  const RequestId first = e.issue_write(1, ResourceSet(1, {0}));
  e.complete(2, first);
  const RequestId second = e.issue_write(3, ResourceSet(1, {0}));
  EXPECT_NE(second, first);
  EXPECT_EQ(e.request(first).state, RequestState::Complete);
  e.complete(4, second);
}

TEST(EngineBasic, MultiResourceWriteChainRespectsTimestamps) {
  // w1 holds l0; w2 waits on {l0,l1}; w3 waits on {l1,l2}.  w3 must not
  // overtake w2 on l1 even though l1 and l2 are free (FIFO write queues).
  Engine e(3, validated());
  ProtocolObserver obs(e);
  const RequestId w1 = e.issue_write(1, ResourceSet(3, {0}));
  obs.after_invocation(InvocationKind::WriteIssue);
  const RequestId w2 = e.issue_write(2, ResourceSet(3, {0, 1}));
  obs.after_invocation(InvocationKind::WriteIssue);
  const RequestId w3 = e.issue_write(3, ResourceSet(3, {1, 2}));
  obs.after_invocation(InvocationKind::WriteIssue);
  EXPECT_EQ(e.state(w2), RequestState::Waiting);
  EXPECT_EQ(e.state(w3), RequestState::Waiting);
  e.complete(4, w1);
  obs.after_invocation(InvocationKind::WriteComplete);
  EXPECT_TRUE(e.is_satisfied(w2));
  EXPECT_EQ(e.state(w3), RequestState::Waiting);
  e.complete(5, w2);
  obs.after_invocation(InvocationKind::WriteComplete);
  EXPECT_TRUE(e.is_satisfied(w3));
  e.complete(6, w3);
  obs.after_invocation(InvocationKind::WriteComplete);
}

TEST(EngineBasic, IncompleteRequestsListedInTimestampOrder) {
  Engine e(1, validated());
  const RequestId w1 = e.issue_write(1, ResourceSet(1, {0}));
  const RequestId w2 = e.issue_write(2, ResourceSet(1, {0}));
  const RequestId w3 = e.issue_write(3, ResourceSet(1, {0}));
  EXPECT_EQ(e.incomplete_requests(),
            (std::vector<RequestId>{w1, w2, w3}));
  e.complete(4, w1);
  EXPECT_EQ(e.incomplete_requests(), (std::vector<RequestId>{w2, w3}));
  e.complete(5, w2);
  e.complete(6, w3);
  EXPECT_TRUE(e.incomplete_requests().empty());
}

}  // namespace
}  // namespace rwrnlp::rsm
