// Proves the uncontended-read fast path (Engine::try_issue_read_fast) is
// observationally equivalent to Rule R1 as run by the full fixpoint: on
// replayed random workloads, an engine that always attempts the fast path
// first produces byte-identical traces (hence identical satisfaction order)
// to an engine that only uses the ordinary issue_read() slow path.
#include <gtest/gtest.h>

#include <vector>

#include "rsm/engine.hpp"
#include "util/rng.hpp"

namespace rwrnlp::rsm {
namespace {

constexpr std::size_t kQ = 8;

EngineOptions traced_options(WriteExpansion expansion) {
  EngineOptions o;
  o.expansion = expansion;
  o.validate = true;
  o.record_trace = true;
  return o;
}

ResourceSet random_set(Rng& rng, std::size_t max_size) {
  ResourceSet rs(kQ);
  const std::size_t n = 1 + rng.next_below(max_size);
  for (std::size_t i = 0; i < n; ++i)
    rs.set(static_cast<ResourceId>(rng.next_below(kQ)));
  return rs;
}

/// Issues a read on `fast` via the fast path (falling back to the slow path
/// when contended) and on `slow` via the slow path only; returns the common
/// request id.
RequestId issue_read_both(Engine& fast, Engine& slow, Time t,
                          const ResourceSet& rs) {
  RequestId fid = fast.try_issue_read_fast(t, rs);
  if (fid == kNoRequest) fid = fast.issue_read(t, rs);
  const RequestId sid = slow.issue_read(t, rs);
  EXPECT_EQ(fid, sid);
  return fid;
}

TEST(FastPathEquivalence, UncontendedReadIsSatisfiedWithoutFixpoint) {
  Engine e(kQ, traced_options(WriteExpansion::ExpandDomain));
  const RequestId id = e.try_issue_read_fast(1.0, ResourceSet(kQ, {0, 3}));
  ASSERT_NE(id, kNoRequest);
  EXPECT_TRUE(e.is_satisfied(id));
  EXPECT_EQ(e.read_holders(0), std::vector<RequestId>{id});
  EXPECT_EQ(e.read_holders(3), std::vector<RequestId>{id});
  ASSERT_EQ(e.trace().size(), 2u);
  EXPECT_EQ(e.trace()[0].kind, TraceKind::Issue);
  EXPECT_EQ(e.trace()[1].kind, TraceKind::Satisfied);
}

TEST(FastPathEquivalence, DeclinesWhenWriterQueuedOrHolding) {
  Engine e(kQ);
  // Satisfied writer on l1: fast path must decline reads touching l1...
  const RequestId w = e.issue_write(1.0, ResourceSet(kQ, {1}));
  ASSERT_TRUE(e.is_satisfied(w));
  EXPECT_EQ(e.try_issue_read_fast(2.0, ResourceSet(kQ, {0, 1})), kNoRequest);
  // ...but still admit disjoint reads.
  EXPECT_NE(e.try_issue_read_fast(3.0, ResourceSet(kQ, {0, 2})), kNoRequest);
  // A *queued* (unsatisfied) writer also blocks the fast path on its whole
  // domain, satisfied or not.
  const RequestId w2 = e.issue_write(4.0, ResourceSet(kQ, {1, 5}));
  EXPECT_FALSE(e.is_satisfied(w2));
  EXPECT_EQ(e.try_issue_read_fast(5.0, ResourceSet(kQ, {5})), kNoRequest);
}

class FastPathReplay : public ::testing::TestWithParam<WriteExpansion> {};

TEST_P(FastPathReplay, RandomWorkloadsProduceIdenticalTraces) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Engine fast(kQ, traced_options(GetParam()));
    Engine slow(kQ, traced_options(GetParam()));
    Rng rng(seed);
    std::vector<RequestId> live;
    Time t = 0;
    for (int op = 0; op < 200; ++op) {
      t += 1.0;
      const std::uint64_t kind = rng.next_below(10);
      if (kind < 5) {  // read (the fast-path candidate)
        live.push_back(issue_read_both(fast, slow, t, random_set(rng, 3)));
      } else if (kind < 7) {  // write
        const ResourceSet rs = random_set(rng, 2);
        const RequestId f = fast.issue_write(t, rs);
        const RequestId s = slow.issue_write(t, rs);
        ASSERT_EQ(f, s);
        live.push_back(f);
      } else if (kind < 8) {  // mixed (reads and writes kept disjoint)
        const ResourceSet writes = random_set(rng, 2);
        ResourceSet reads = random_set(rng, 2);
        reads -= writes;
        const RequestId f = reads.empty() ? fast.issue_write(t, writes)
                                          : fast.issue_mixed(t, reads, writes);
        const RequestId s = reads.empty() ? slow.issue_write(t, writes)
                                          : slow.issue_mixed(t, reads, writes);
        ASSERT_EQ(f, s);
        live.push_back(f);
      } else if (!live.empty()) {  // complete a random satisfied request
        const std::size_t pick = rng.next_below(live.size());
        const RequestId id = live[pick];
        if (fast.is_satisfied(id)) {
          fast.complete(t, id);
          slow.complete(t, id);
          live.erase(live.begin() + pick);
        }
      }
    }
    // Drain: complete everything in satisfaction order.
    while (!live.empty()) {
      t += 1.0;
      bool progressed = false;
      for (std::size_t i = 0; i < live.size(); ++i) {
        if (fast.is_satisfied(live[i])) {
          fast.complete(t, live[i]);
          slow.complete(t, live[i]);
          live.erase(live.begin() + i);
          progressed = true;
          break;
        }
      }
      ASSERT_TRUE(progressed) << "deadlock in replay, seed " << seed;
    }
    EXPECT_EQ(format_trace(fast.trace()), format_trace(slow.trace()))
        << "trace divergence at seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(BothExpansionModes, FastPathReplay,
                         ::testing::Values(WriteExpansion::ExpandDomain,
                                           WriteExpansion::Placeholders));

}  // namespace
}  // namespace rwrnlp::rsm
