// Conformance of measured acquisition delays to the analysis-layer bounds.
//
// The RSM property tests already assert Theorems 1/2 against constants
// inlined in the test; here the randomized exerciser workloads are checked
// against the *analysis module's own* bound functions
// (analysis::read/write_acquisition_bound), closing the loop between the
// measured engine behaviour and the numbers the schedulability study feeds
// into its inflation terms.  A sweep over seeds, processor counts, mixed
// shares, and both write-expansion strategies; every run must stay within
// Thm. 1 (reads) and Thm. 2 (writes).
#include <gtest/gtest.h>

#include "analysis/blocking.hpp"
#include "sched/protocol.hpp"
#include "tests/rsm/exerciser.hpp"

namespace rwrnlp::analysis {
namespace {

using rsm::testing::Exerciser;
using rsm::testing::ExerciserConfig;
using rsm::testing::ExerciserResult;

sched::ProtocolKind kind_of(rsm::WriteExpansion exp) {
  return exp == rsm::WriteExpansion::Placeholders
             ? sched::ProtocolKind::RwRnlpPlaceholders
             : sched::ProtocolKind::RwRnlp;
}

/// Runs one exerciser workload and asserts its measured delays against the
/// analysis bounds for the matching protocol kind.
void expect_conformant(const ExerciserConfig& cfg) {
  Exerciser ex(cfg);
  const ExerciserResult res = ex.run();
  ASSERT_GT(res.reads_issued + res.writes_issued, 0u);

  const BlockingContext ctx{cfg.m, cfg.l_read, cfg.l_write};
  const sched::ProtocolKind kind = kind_of(cfg.expansion);
  const double read_bound = read_acquisition_bound(kind, ctx);
  const double write_bound = write_acquisition_bound(kind, ctx);
  // Theorem 1: reader acquisition delay <= L^r_max + L^w_max.
  EXPECT_LE(res.max_read_delay, read_bound + 1e-9)
      << "seed=" << cfg.seed << " m=" << cfg.m << " q=" << cfg.q
      << " expansion=" << static_cast<int>(cfg.expansion);
  // Theorem 2: writer acquisition delay <= (m-1)(L^r_max + L^w_max).
  EXPECT_LE(res.max_write_delay, write_bound + 1e-9)
      << "seed=" << cfg.seed << " m=" << cfg.m << " q=" << cfg.q
      << " expansion=" << static_cast<int>(cfg.expansion);
}

TEST(BoundConformance, SeedSweepExpandDomain) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    ExerciserConfig cfg;
    cfg.seed = seed;
    cfg.expansion = rsm::WriteExpansion::ExpandDomain;
    expect_conformant(cfg);
  }
}

TEST(BoundConformance, SeedSweepPlaceholders) {
  for (std::uint64_t seed = 101; seed <= 112; ++seed) {
    ExerciserConfig cfg;
    cfg.seed = seed;
    cfg.expansion = rsm::WriteExpansion::Placeholders;
    expect_conformant(cfg);
  }
}

TEST(BoundConformance, ProcessorCountSweep) {
  for (const std::size_t m : {2u, 3u, 6u, 8u}) {
    for (const rsm::WriteExpansion exp : {rsm::WriteExpansion::ExpandDomain,
                                          rsm::WriteExpansion::Placeholders}) {
      ExerciserConfig cfg;
      cfg.seed = 900 + m;
      cfg.m = m;
      cfg.q = 6;
      cfg.steps = 500;
      cfg.expansion = exp;
      expect_conformant(cfg);
    }
  }
}

TEST(BoundConformance, WriteHeavyWorkloads) {
  for (std::uint64_t seed = 40; seed <= 45; ++seed) {
    ExerciserConfig cfg;
    cfg.seed = seed;
    cfg.read_prob = 0.2;  // mostly writers: stresses the Thm. 2 side
    cfg.m = 6;
    cfg.steps = 600;
    expect_conformant(cfg);
  }
}

TEST(BoundConformance, MixedRequestWorkloads) {
  for (std::uint64_t seed = 70; seed <= 75; ++seed) {
    ExerciserConfig cfg;
    cfg.seed = seed;
    cfg.mixed_prob = 0.5;  // mixed requests count as writers for Thm. 2
    cfg.m = 5;
    cfg.steps = 500;
    expect_conformant(cfg);
  }
}

TEST(BoundConformance, HighContentionSingleResource) {
  // Everything funnels through one resource: the tightest practical squeeze
  // on both theorem bounds.
  for (std::uint64_t seed = 200; seed <= 205; ++seed) {
    ExerciserConfig cfg;
    cfg.seed = seed;
    cfg.q = 1;
    cfg.max_req_size = 1;
    cfg.num_patterns = 2;
    cfg.m = 4;
    cfg.steps = 400;
    expect_conformant(cfg);
  }
}

// The suspension-mode donation bound and spin-mode release bound are
// monotone consequences of the acquisition bounds; sanity-check the
// analysis module keeps them ordered the way Sec. 3.3 / 3.8 require.
TEST(BoundConformance, DerivedBoundsDominateAcquisition) {
  for (const std::size_t m : {2u, 4u, 8u}) {
    const BlockingContext ctx{m, 2.0, 3.0};
    for (const sched::ProtocolKind kind :
         {sched::ProtocolKind::RwRnlp,
          sched::ProtocolKind::RwRnlpPlaceholders}) {
      EXPECT_GE(donation_pi_blocking_bound(kind, ctx),
                write_acquisition_bound(kind, ctx));
      EXPECT_GE(write_acquisition_bound(kind, ctx),
                read_acquisition_bound(kind, ctx) * (m > 1 ? 1.0 : 0.0));
      EXPECT_GT(spin_release_pi_blocking_bound(kind, ctx), 0.0);
    }
  }
}

}  // namespace
}  // namespace rwrnlp::analysis
