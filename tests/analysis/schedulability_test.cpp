#include "analysis/schedulability.hpp"

#include <gtest/gtest.h>

#include "sched/simulator.hpp"
#include "tasksys/generator.hpp"

namespace rwrnlp::analysis {
namespace {

using sched::ProtocolKind;
using sched::WaitMode;

TEST(PartitionedEdf, BasicBinPacking) {
  EXPECT_TRUE(partitioned_edf_first_fit({0.5, 0.5, 0.5, 0.5}, 2));
  EXPECT_FALSE(partitioned_edf_first_fit({0.6, 0.6, 0.6, 0.6}, 2));
  // 0.6-items cannot share a unit bin, so four of them need four bins.
  EXPECT_FALSE(partitioned_edf_first_fit({0.6, 0.6, 0.6, 0.6}, 3));
  EXPECT_TRUE(partitioned_edf_first_fit({0.6, 0.6, 0.6, 0.6}, 4));
  EXPECT_TRUE(partitioned_edf_first_fit({0.6, 0.6, 0.6, 0.4, 0.4, 0.4}, 3));
  EXPECT_FALSE(partitioned_edf_first_fit({1.1}, 4));  // single task over 1
  EXPECT_TRUE(partitioned_edf_first_fit({}, 1));
}

TEST(PartitionedEdf, FirstFitDecreasingPacksTightly) {
  // FFD handles 0.7/0.3 pairs that naive order might not.
  EXPECT_TRUE(
      partitioned_edf_first_fit({0.3, 0.7, 0.3, 0.7}, 2));
}

TEST(GlobalEdf, GfbBound) {
  // U <= m - (m-1) u_max.
  EXPECT_TRUE(global_edf_gfb({0.5, 0.5, 0.5}, 2));    // 1.5 <= 2 - 0.5
  EXPECT_FALSE(global_edf_gfb({0.9, 0.9}, 2));        // 1.8 > 2 - 0.9
  EXPECT_TRUE(global_edf_gfb({0.1, 0.1, 0.1, 0.1}, 1));
  EXPECT_FALSE(global_edf_gfb({1.2}, 4));
}

TEST(Schedulability, LightIndependentSystemIsSchedulableEverywhere) {
  Rng rng(3);
  tasksys::GeneratorConfig gc;
  gc.num_tasks = 4;
  gc.total_utilization = 0.8;
  gc.num_processors = 4;
  gc.cluster_size = 4;
  gc.access_prob = 0.0;  // no shared resources at all
  const auto sys = tasksys::generate(rng, gc);
  for (const auto kind :
       {ProtocolKind::RwRnlp, ProtocolKind::MutexRnlp, ProtocolKind::GroupRw,
        ProtocolKind::GroupMutex}) {
    // No requests: only the per-job progress-mechanism term, which is zero
    // because L_max = 0.
    EXPECT_TRUE(schedulable(sys, kind, WaitMode::Suspend,
                            SchedAlgo::PartitionedEdf))
        << to_string(kind);
  }
}

TEST(Schedulability, InflationGrowsWithBlocking) {
  Rng rng(5);
  tasksys::GeneratorConfig gc;
  gc.num_tasks = 8;
  gc.total_utilization = 2.0;
  gc.num_processors = 4;
  gc.read_ratio = 1.0;  // all reads
  gc.access_prob = 1.0;
  const auto sys = tasksys::generate(rng, gc);
  const auto rw =
      inflated_utilizations(sys, ProtocolKind::RwRnlp, WaitMode::Suspend);
  const auto mtx =
      inflated_utilizations(sys, ProtocolKind::MutexRnlp, WaitMode::Suspend);
  // With read-only sharing, the R/W RNLP inflates strictly less than the
  // mutex RNLP (reads are O(1) vs O(m)) for tasks that touch resources.
  double rw_sum = 0, mtx_sum = 0;
  for (double u : rw) rw_sum += u;
  for (double u : mtx) mtx_sum += u;
  EXPECT_LT(rw_sum, mtx_sum);
}

TEST(Schedulability, ReadOnlyWorkloadsFavorTheRwRnlp) {
  // Sweep a few seeds: count task sets schedulable under each protocol with
  // a read-only workload; the R/W RNLP must dominate the mutex RNLP.
  Rng rng(17);
  int rw_ok = 0, mtx_ok = 0;
  for (int trial = 0; trial < 40; ++trial) {
    tasksys::GeneratorConfig gc;
    gc.num_tasks = 10;
    gc.total_utilization = 2.2;
    gc.num_processors = 4;
    gc.read_ratio = 1.0;
    gc.access_prob = 1.0;
    gc.cs_min = 0.05;
    gc.cs_max = 0.3;
    const auto sys = tasksys::generate(rng, gc);
    rw_ok += schedulable(sys, ProtocolKind::RwRnlp, WaitMode::Suspend,
                         SchedAlgo::PartitionedEdf);
    mtx_ok += schedulable(sys, ProtocolKind::MutexRnlp, WaitMode::Suspend,
                          SchedAlgo::PartitionedEdf);
  }
  EXPECT_GE(rw_ok, mtx_ok);
  EXPECT_GT(rw_ok, 0);
}

TEST(Schedulability, AnalysisIsSoundAgainstSimulation) {
  // For schedulable-by-analysis systems, the simulator must observe no
  // deadline misses and acquisition delays within the analysis bounds.
  Rng rng(23);
  int checked = 0;
  for (int trial = 0; trial < 12 && checked < 4; ++trial) {
    tasksys::GeneratorConfig gc;
    gc.num_tasks = 6;
    gc.total_utilization = 1.2;
    gc.num_processors = 4;
    gc.cluster_size = 4;
    gc.read_ratio = 0.6;
    const auto sys = tasksys::generate(rng, gc);
    if (!schedulable(sys, ProtocolKind::RwRnlp, WaitMode::Spin,
                     SchedAlgo::GlobalEdf))
      continue;
    ++checked;
    sched::ProtocolAdapter proto(ProtocolKind::RwRnlp, sys, true);
    sched::SimConfig cfg;
    cfg.horizon = 300;
    cfg.wait = WaitMode::Spin;
    sched::Simulator sim(sys, proto, cfg);
    const auto res = sim.run();
    for (std::size_t i = 0; i < sys.tasks.size(); ++i) {
      EXPECT_EQ(res.per_task[i].deadline_misses, 0u)
          << "trial " << trial << " task " << i;
      // The simulator pools delays per task, so compare against the max
      // bound across the task's sections of each type.
      double read_bound = 0, write_bound = 0;
      for (const auto& seg : sys.tasks[i].segments) {
        const double b = request_acquisition_bound(ProtocolKind::RwRnlp, sys,
                                                   i, seg.cs);
        (seg.cs.is_write() ? write_bound : read_bound) =
            std::max(seg.cs.is_write() ? write_bound : read_bound, b);
      }
      if (!res.per_task[i].read_acq_delay.empty()) {
        EXPECT_LE(res.per_task[i].read_acq_delay.max(), read_bound + 1e-6)
            << "trial " << trial << " task " << i;
      }
      if (!res.per_task[i].write_acq_delay.empty()) {
        EXPECT_LE(res.per_task[i].write_acq_delay.max(), write_bound + 1e-6)
            << "trial " << trial << " task " << i;
      }
    }
  }
  EXPECT_GT(checked, 0);
}

}  // namespace
}  // namespace rwrnlp::analysis
