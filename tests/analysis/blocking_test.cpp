#include "analysis/blocking.hpp"

#include <gtest/gtest.h>

#include "tasksys/generator.hpp"

namespace rwrnlp::analysis {
namespace {

using sched::ProtocolKind;
using sched::WaitMode;

BlockingContext ctx_of(std::size_t m, double lr, double lw) {
  BlockingContext c;
  c.m = m;
  c.l_read = lr;
  c.l_write = lw;
  return c;
}

TEST(BlockingBounds, TheoremFormulas) {
  const BlockingContext c = ctx_of(4, 2.0, 3.0);
  // Thm. 1: L^r + L^w.
  EXPECT_DOUBLE_EQ(read_acquisition_bound(ProtocolKind::RwRnlp, c), 5.0);
  // Thm. 2: (m-1)(L^r + L^w).
  EXPECT_DOUBLE_EQ(write_acquisition_bound(ProtocolKind::RwRnlp, c), 15.0);
  // Mutex protocols: (m-1) L_max for every request.
  EXPECT_DOUBLE_EQ(read_acquisition_bound(ProtocolKind::MutexRnlp, c), 9.0);
  EXPECT_DOUBLE_EQ(write_acquisition_bound(ProtocolKind::GroupMutex, c), 9.0);
  // Spin release blocking: m * L_max.
  EXPECT_DOUBLE_EQ(spin_release_pi_blocking_bound(ProtocolKind::RwRnlp, c),
                   12.0);
  // Donation: worst acquisition + L_max = 15 + 3.
  EXPECT_DOUBLE_EQ(donation_pi_blocking_bound(ProtocolKind::RwRnlp, c), 18.0);
}

TEST(BlockingBounds, ReadersAreOofOneWritersOofM) {
  // The asymptotic claim: reader bounds do not grow with m; writer bounds
  // grow linearly.
  const double r4 = read_acquisition_bound(ProtocolKind::RwRnlp,
                                           ctx_of(4, 1, 1));
  const double r64 = read_acquisition_bound(ProtocolKind::RwRnlp,
                                            ctx_of(64, 1, 1));
  EXPECT_DOUBLE_EQ(r4, r64);
  const double w4 = write_acquisition_bound(ProtocolKind::RwRnlp,
                                            ctx_of(4, 1, 1));
  const double w8 = write_acquisition_bound(ProtocolKind::RwRnlp,
                                            ctx_of(8, 1, 1));
  EXPECT_NEAR(w8 / w4, 7.0 / 3.0, 1e-12);
}

sched::TaskSystem two_task_system(bool share) {
  sched::TaskSystem sys;
  sys.num_processors = 4;
  sys.cluster_size = 4;
  sys.num_resources = 4;
  for (int i = 0; i < 2; ++i) {
    sched::TaskParams t;
    t.id = i;
    t.period = 10;
    t.deadline = 10;
    sched::Segment s;
    s.compute_before = 1;
    s.cs.reads = ResourceSet(4);
    s.cs.writes = ResourceSet(4);
    // Task 0 writes l0; task 1 writes l0 (share) or l1 (disjoint).
    s.cs.writes.set(share ? 0 : static_cast<ResourceId>(i));
    s.cs.length = 1 + i;  // lengths 1 and 2
    t.segments.push_back(s);
    t.final_compute = 0.5;
    sys.tasks.push_back(t);
  }
  return sys;
}

TEST(BlockingBounds, ContentionAwareRefinementDisjointTasksDontBlock) {
  const auto sys = two_task_system(/*share=*/false);
  const auto& cs0 = sys.tasks[0].segments[0].cs;
  EXPECT_DOUBLE_EQ(
      request_acquisition_bound(ProtocolKind::RwRnlp, sys, 0, cs0), 0.0);
  // Under the group lock everything conflicts: theorem bound applies.
  EXPECT_GT(request_acquisition_bound(ProtocolKind::GroupMutex, sys, 0, cs0),
            0.0);
}

TEST(BlockingBounds, ContentionAwareRefinementSharedTasksBlock) {
  const auto sys = two_task_system(/*share=*/true);
  const auto& cs0 = sys.tasks[0].segments[0].cs;
  const double b =
      request_acquisition_bound(ProtocolKind::RwRnlp, sys, 0, cs0);
  // One conflicting writer task of length 2: refined bound is
  // 1 * (L^r + lw_c) + lr_c = 1 * (0 + 2) + 0 = 2.
  EXPECT_DOUBLE_EQ(b, 2.0);
}

TEST(BlockingBounds, UncontendedReaderHasZeroBound) {
  auto sys = two_task_system(false);
  // Make task 0's section a read; no writers touch l0.
  sys.tasks[0].segments[0].cs.reads = sys.tasks[0].segments[0].cs.writes;
  sys.tasks[0].segments[0].cs.writes = ResourceSet(4);
  sys.tasks[1].segments[0].cs.writes = ResourceSet(4, {2});
  const auto& cs0 = sys.tasks[0].segments[0].cs;
  EXPECT_DOUBLE_EQ(
      request_acquisition_bound(ProtocolKind::RwRnlp, sys, 0, cs0), 0.0);
  // The mutex RNLP treats the read as a write — still no conflicts on l0.
  EXPECT_DOUBLE_EQ(
      request_acquisition_bound(ProtocolKind::MutexRnlp, sys, 0, cs0), 0.0);
}

TEST(BlockingBounds, RefinementNeverExceedsTheorem) {
  Rng rng(31);
  tasksys::GeneratorConfig gc;
  gc.num_tasks = 10;
  gc.total_utilization = 2.0;
  gc.num_resources = 6;
  for (int trial = 0; trial < 20; ++trial) {
    const auto sys = tasksys::generate(rng, gc);
    const BlockingContext ctx = BlockingContext::of(sys);
    for (std::size_t i = 0; i < sys.tasks.size(); ++i) {
      for (const auto& seg : sys.tasks[i].segments) {
        for (const auto kind :
             {ProtocolKind::RwRnlp, ProtocolKind::RwRnlpPlaceholders,
              ProtocolKind::MutexRnlp, ProtocolKind::GroupRw,
              ProtocolKind::GroupMutex}) {
          const double refined =
              request_acquisition_bound(kind, sys, i, seg.cs);
          const double theorem =
              seg.cs.is_write() || kind == ProtocolKind::MutexRnlp ||
                      kind == ProtocolKind::GroupMutex
                  ? write_acquisition_bound(kind, ctx)
                  : read_acquisition_bound(kind, ctx);
          EXPECT_LE(refined, theorem + 1e-9);
          EXPECT_GE(refined, 0.0);
        }
      }
    }
  }
}

TEST(BlockingBounds, TransitiveConflictsAreCounted) {
  // Task 0 writes {l0}; task 1 writes {l0, l1}; task 2 writes {l1, l2};
  // task 0's request can transitively wait for task 2 through task 1.
  sched::TaskSystem sys;
  sys.num_processors = 4;
  sys.cluster_size = 4;
  sys.num_resources = 3;
  auto add = [&](int id, std::initializer_list<ResourceId> rs, double len) {
    sched::TaskParams t;
    t.id = id;
    t.period = 10;
    t.deadline = 10;
    sched::Segment s;
    s.compute_before = 1;
    s.cs.reads = ResourceSet(3);
    s.cs.writes = ResourceSet(3, rs);
    s.cs.length = len;
    t.segments.push_back(s);
    t.final_compute = 0.1;
    sys.tasks.push_back(t);
  };
  add(0, {0}, 1);
  add(1, {0, 1}, 1);
  add(2, {1, 2}, 5);
  const auto& cs0 = sys.tasks[0].segments[0].cs;
  const double b =
      request_acquisition_bound(ProtocolKind::RwRnlp, sys, 0, cs0);
  // Two reachable writer tasks with lw_c = 5: 2 * (0 + 5) + 0 = 10.
  EXPECT_DOUBLE_EQ(b, 10.0);
}

TEST(BlockingBounds, JobBoundAddsProgressMechanismTerm) {
  const auto sys = two_task_system(true);
  const BlockingContext ctx = BlockingContext::of(sys);
  const double spin =
      job_blocking_bound(ProtocolKind::RwRnlp, WaitMode::Spin, sys, 0);
  const double susp =
      job_blocking_bound(ProtocolKind::RwRnlp, WaitMode::Suspend, sys, 0);
  const double req = request_acquisition_bound(
      ProtocolKind::RwRnlp, sys, 0, sys.tasks[0].segments[0].cs);
  // The progress-mechanism term is the min of the paper's global bound and
  // the worst contention-aware request span in the system.  Here: task 0's
  // request can wait 2 (behind task 1's CS) and then runs 1 -> span 3;
  // task 1's request waits 1 and runs 2 -> span 3.
  const double worst_span = 3.0;
  EXPECT_DOUBLE_EQ(
      spin,
      req + std::min(spin_release_pi_blocking_bound(ProtocolKind::RwRnlp,
                                                    ctx),
                     worst_span));
  EXPECT_DOUBLE_EQ(
      susp,
      req + std::min(donation_pi_blocking_bound(ProtocolKind::RwRnlp, ctx),
                     worst_span));
  // Both per-job bounds include at least the request's own term.
  EXPECT_GE(spin, req);
  EXPECT_GE(susp, req);
}

}  // namespace
}  // namespace rwrnlp::analysis
