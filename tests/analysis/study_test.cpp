#include "analysis/study.hpp"

#include <gtest/gtest.h>

namespace rwrnlp::analysis {
namespace {

using sched::ProtocolKind;

StudyConfig small_cfg() {
  StudyConfig cfg;
  cfg.base.num_tasks = 8;
  cfg.base.num_processors = 4;
  cfg.base.cluster_size = 4;
  cfg.base.num_resources = 4;
  cfg.base.read_ratio = 0.7;
  cfg.base.cs_min = 0.05;
  cfg.base.cs_max = 0.2;
  cfg.sets_per_point = 20;
  cfg.seed = 7;
  return cfg;
}

TEST(Study, UtilizationSweepIsMonotoneDecreasing) {
  const auto res = sweep_utilization(small_cfg(), {0.2, 0.5, 0.9});
  ASSERT_EQ(res.points.size(), 3u);
  for (const auto& curve : res.curves) {
    ASSERT_EQ(curve.acceptance.size(), 3u);
    // More load can only hurt (statistically; with paired sets and a wide
    // spread this holds deterministically at the extremes).
    EXPECT_GE(curve.acceptance.front(), curve.acceptance.back());
    for (double a : curve.acceptance) {
      EXPECT_GE(a, 0.0);
      EXPECT_LE(a, 1.0);
    }
  }
}

TEST(Study, AreaAccumulatesAcceptance) {
  const auto res = sweep_utilization(small_cfg(), {0.2, 0.4});
  for (const auto& curve : res.curves) {
    EXPECT_NEAR(curve.area, curve.acceptance[0] + curve.acceptance[1],
                1e-12);
  }
}

TEST(Study, CurveLookup) {
  const auto res = sweep_utilization(small_cfg(), {0.3});
  EXPECT_EQ(res.curve(ProtocolKind::RwRnlp).protocol, ProtocolKind::RwRnlp);
  EXPECT_THROW(
      [&] {
        StudyConfig cfg = small_cfg();
        cfg.protocols = {ProtocolKind::RwRnlp};
        const auto r2 = sweep_utilization(cfg, {0.3});
        (void)r2.curve(ProtocolKind::GroupMutex);
      }(),
      std::invalid_argument);
}

TEST(Study, LongerCriticalSectionsHurt) {
  StudyConfig cfg = small_cfg();
  cfg.base.total_utilization = 2.0;
  const auto res = sweep_cs_length(cfg, {0.05, 1.5});
  for (const auto& curve : res.curves) {
    EXPECT_GE(curve.acceptance.front(), curve.acceptance.back())
        << to_string(curve.protocol);
  }
}

TEST(Study, ReadRatioHelpsRwProtocolsOnly) {
  StudyConfig cfg = small_cfg();
  cfg.base.total_utilization = 2.4;
  cfg.base.cs_max = 0.4;
  cfg.sets_per_point = 30;
  const auto res = sweep_read_ratio(cfg, {0.0, 1.0});
  // The R/W RNLP benefits from a higher read ratio; the mutex protocols
  // are read-blind by construction (they treat reads as writes), so their
  // two points differ only through sampling, which paired sets eliminate —
  // the generator consumes the same randomness per set either way? (It
  // does not: read/write choice consumes RNG draws.)  We therefore only
  // assert the strong directional claim for the R/W RNLP.
  const auto& rw = res.curve(sched::ProtocolKind::RwRnlp);
  EXPECT_GE(rw.acceptance[1], rw.acceptance[0]);
}

TEST(Study, PairedSetsAcrossProtocols) {
  // All protocols are evaluated on the same generated sets: with zero
  // resource accesses every protocol must produce the *identical* curve.
  StudyConfig cfg = small_cfg();
  cfg.base.access_prob = 0.0;
  const auto res = sweep_utilization(cfg, {0.4, 0.8});
  for (std::size_t p = 1; p < res.curves.size(); ++p) {
    EXPECT_EQ(res.curves[p].acceptance, res.curves[0].acceptance);
  }
}

TEST(Study, RejectsEmptyInputs) {
  StudyConfig cfg = small_cfg();
  EXPECT_THROW(sweep_utilization(cfg, {}), std::invalid_argument);
  cfg.protocols.clear();
  EXPECT_THROW(sweep_utilization(cfg, {0.5}), std::invalid_argument);
}

}  // namespace
}  // namespace rwrnlp::analysis
