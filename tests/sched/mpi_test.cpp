// Tests for the DonationPlusMpi progress mechanism (the Sec. 4 future-work
// combination): P1/P2 still hold, workloads stay live, and the innocent-
// bystander pi-blocking shrinks relative to pure donation.
#include <gtest/gtest.h>

#include "sched/simulator.hpp"
#include "tasksys/generator.hpp"

namespace rwrnlp::sched {
namespace {

TaskSystem bystander_system() {
  TaskSystem sys;
  sys.num_processors = 2;
  sys.cluster_size = 2;
  sys.num_resources = 2;
  TaskParams hi;
  hi.id = 0;
  hi.period = 3;
  hi.deadline = 1.5;
  hi.final_compute = 0.3;
  sys.tasks.push_back(hi);
  for (int i = 0; i < 4; ++i) {
    TaskParams t;
    t.id = i + 1;
    t.period = 12 + i;
    t.deadline = t.period;
    t.phase = 0.1 * i;
    Segment s;
    s.compute_before = 0.1;
    s.cs.reads = ResourceSet(2);
    s.cs.writes = ResourceSet(2, {0, 1});
    s.cs.length = 1.5;
    t.segments.push_back(s);
    t.final_compute = 0.1;
    sys.tasks.push_back(t);
  }
  sys.validate();
  return sys;
}

double run_bystander(ProgressMechanism progress) {
  const TaskSystem sys = bystander_system();
  ProtocolAdapter proto(ProtocolKind::RwRnlp, sys, true);
  SimConfig cfg;
  cfg.horizon = 300;
  cfg.wait = WaitMode::Suspend;
  cfg.progress = progress;
  Simulator sim(sys, proto, cfg);
  const SimResult res = sim.run();
  return res.per_task[0].s_oblivious_pi_blocking.max();
}

TEST(MpiProgress, ReducesInnocentJobPiBlocking) {
  const double donation = run_bystander(ProgressMechanism::Donation);
  const double mpi = run_bystander(ProgressMechanism::DonationPlusMpi);
  EXPECT_GT(donation, 0.0);  // pure donation does block the bystander
  EXPECT_LT(mpi, donation);
}

TEST(MpiProgress, P1P2HoldAndWorkloadsComplete) {
  // Randomized systems run to completion with full validation under MPI.
  Rng rng(55);
  for (int trial = 0; trial < 4; ++trial) {
    tasksys::GeneratorConfig gc;
    gc.num_tasks = 8;
    gc.total_utilization = 1.6;
    gc.num_processors = 4;
    gc.cluster_size = 4;
    gc.read_ratio = 0.4;
    const TaskSystem sys = tasksys::generate(rng, gc);
    ProtocolAdapter proto(ProtocolKind::RwRnlp, sys, true);
    SimConfig cfg;
    cfg.horizon = 300;
    cfg.wait = WaitMode::Suspend;
    cfg.progress = ProgressMechanism::DonationPlusMpi;
    cfg.validate = true;  // P1/P2 asserted on every event
    Simulator sim(sys, proto, cfg);
    const SimResult res = sim.run();
    EXPECT_GT(res.jobs_completed, 0u);
    // Theorem bounds still hold: the RSM is unchanged, only the progress
    // mechanism differs, and P1/P2 are its only obligations.
    const double lr = sys.l_read_max();
    const double lw = sys.l_write_max();
    EXPECT_LE(res.max_read_acq_delay(), lr + lw + 1e-6);
    EXPECT_LE(res.max_write_acq_delay(), 3 * (lr + lw) + 1e-6);
  }
}

TEST(MpiProgress, ReadersStillUseDonation) {
  // A read-request holder displaced from the top-c still receives a donor
  // under DonationPlusMpi (only writes switch to inheritance).  We verify
  // indirectly: reader-heavy workloads behave identically under both
  // mechanisms when no writes exist.
  Rng rng(77);
  tasksys::GeneratorConfig gc;
  gc.num_tasks = 6;
  gc.total_utilization = 1.2;
  gc.num_processors = 2;
  gc.cluster_size = 2;
  gc.read_ratio = 1.0;
  const TaskSystem sys = tasksys::generate(rng, gc);
  auto run = [&](ProgressMechanism p) {
    ProtocolAdapter proto(ProtocolKind::RwRnlp, sys, true);
    SimConfig cfg;
    cfg.horizon = 200;
    cfg.wait = WaitMode::Suspend;
    cfg.progress = p;
    Simulator sim(sys, proto, cfg);
    return sim.run();
  };
  const SimResult a = run(ProgressMechanism::Donation);
  const SimResult b = run(ProgressMechanism::DonationPlusMpi);
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
  for (std::size_t i = 0; i < sys.tasks.size(); ++i) {
    if (!a.per_task[i].s_oblivious_pi_blocking.empty() &&
        !b.per_task[i].s_oblivious_pi_blocking.empty()) {
      EXPECT_DOUBLE_EQ(a.per_task[i].s_oblivious_pi_blocking.max(),
                       b.per_task[i].s_oblivious_pi_blocking.max())
          << "task " << i;
    }
  }
}

}  // namespace
}  // namespace rwrnlp::sched
