// Reproduction of Fig. 3 of the paper: the difference between s-oblivious
// and s-aware pi-blocking (Def. 5).
//
// Three EDF-scheduled jobs share one resource l_a on m = 2 processors
// (global scheduling, c = 2).  While J_2 holds l_a and J_1 is suspended
// waiting for it, J_3 is pending but not scheduled:
//   * two higher-priority jobs are *pending* (J_1 and J_2), so J_3 is NOT
//     s-oblivious pi-blocked;
//   * only one higher-priority job is *ready* (J_2 — J_1 is suspended), so
//     J_3 IS s-aware pi-blocked.
// The test checks that the simulator's Def. 5 accounting shows exactly this
// differential.
#include <gtest/gtest.h>

#include "sched/simulator.hpp"

namespace rwrnlp::sched {
namespace {

TEST(Fig3, SAwareExceedsSObliviousForTheLowPriorityJob) {
  TaskSystem sys;
  sys.num_processors = 2;
  sys.cluster_size = 2;  // global scheduling
  sys.num_resources = 1;

  // J_2: released at 0, deadline 10; computes 1, then writes l_a for 4
  // time units ([1, 5)).
  {
    TaskParams t;
    t.id = 0;
    t.period = 100;
    t.deadline = 10;
    Segment s;
    s.compute_before = 1;
    s.cs.reads = ResourceSet(1);
    s.cs.writes = ResourceSet(1, {0});
    s.cs.length = 4;
    t.segments.push_back(s);
    t.final_compute = 0.001;
    sys.tasks.push_back(t);
  }
  // J_1: released at 1, deadline 6 (highest priority); computes 1, then
  // requests l_a at t = 2 and suspends until t = 5.
  {
    TaskParams t;
    t.id = 1;
    t.period = 100;
    t.deadline = 6;
    t.phase = 1;
    Segment s;
    s.compute_before = 1;
    s.cs.reads = ResourceSet(1);
    s.cs.writes = ResourceSet(1, {0});
    s.cs.length = 1;
    t.segments.push_back(s);
    t.final_compute = 0.001;
    sys.tasks.push_back(t);
  }
  // J_3: released at 0, deadline 12 (lowest priority); wants 2 units of
  // computation then the lock.
  {
    TaskParams t;
    t.id = 2;
    t.period = 100;
    t.deadline = 12;
    Segment s;
    s.compute_before = 2;
    s.cs.reads = ResourceSet(1);
    s.cs.writes = ResourceSet(1, {0});
    s.cs.length = 1;
    t.segments.push_back(s);
    t.final_compute = 0.001;
    sys.tasks.push_back(t);
  }
  sys.validate();

  ProtocolAdapter proto(ProtocolKind::RwRnlp, sys, /*validate=*/true);
  SimConfig cfg;
  cfg.horizon = 20;
  cfg.wait = WaitMode::Suspend;
  Simulator sim(sys, proto, cfg);
  const SimResult res = sim.run();

  ASSERT_EQ(res.per_task[2].jobs_completed, 1u);
  const double aware = res.per_task[2].s_aware_pi_blocking.max();
  const double obliv = res.per_task[2].s_oblivious_pi_blocking.max();

  // While J_1 is suspended and J_2 executes its critical section, J_3 is
  // s-aware blocked but not s-oblivious blocked for 2 time units (here
  // [3, 5): J_3 finishes its compute at 3 because it shares the second
  // processor only from t = 2).
  EXPECT_GT(aware, obliv);
  EXPECT_NEAR(aware - obliv, 2.0, 1e-6);

  // The high-priority waiter J_1 is pi-blocked under *both* definitions
  // while suspended (no higher-priority job exists at all).
  const double j1_aware = res.per_task[1].s_aware_pi_blocking.max();
  const double j1_obliv = res.per_task[1].s_oblivious_pi_blocking.max();
  EXPECT_NEAR(j1_aware, 3.0, 1e-6);   // suspended during [2, 5)
  EXPECT_NEAR(j1_obliv, 3.0, 1e-6);
}

TEST(Fig3, UnderSpinningTheScenarioShowsSBlockingInstead) {
  // Same setup, spin-based: J_1 spins on its processor during [2, 5) —
  // s-blocking per Def. 2, and no suspension-based pi-blocking semantics.
  TaskSystem sys;
  sys.num_processors = 2;
  sys.cluster_size = 2;
  sys.num_resources = 1;
  for (int i = 0; i < 2; ++i) {
    TaskParams t;
    t.id = i;
    t.period = 100;
    t.deadline = i == 0 ? 10 : 6;
    t.phase = i == 0 ? 0 : 1;
    Segment s;
    s.compute_before = 1;
    s.cs.reads = ResourceSet(1);
    s.cs.writes = ResourceSet(1, {0});
    s.cs.length = i == 0 ? 4 : 1;
    t.segments.push_back(s);
    t.final_compute = 0.001;
    sys.tasks.push_back(t);
  }
  sys.validate();
  ProtocolAdapter proto(ProtocolKind::RwRnlp, sys, true);
  SimConfig cfg;
  cfg.horizon = 20;
  cfg.wait = WaitMode::Spin;
  Simulator sim(sys, proto, cfg);
  const SimResult res = sim.run();
  EXPECT_NEAR(res.per_task[1].s_blocking.max(), 3.0, 1e-6);
  EXPECT_NEAR(res.per_task[1].write_acq_delay.max(), 3.0, 1e-6);
}

}  // namespace
}  // namespace rwrnlp::sched
