// Scheduler-conformance tests for the discrete-event simulator.
#include "sched/simulator.hpp"

#include <gtest/gtest.h>

namespace rwrnlp::sched {
namespace {

TaskParams simple_task(int id, double period, double compute,
                       double deadline = 0) {
  TaskParams t;
  t.id = id;
  t.period = period;
  t.deadline = deadline > 0 ? deadline : period;
  t.final_compute = compute;
  return t;
}

TaskParams task_with_cs(int id, double period, double pre, double cs_len,
                        const ResourceSet& reads, const ResourceSet& writes,
                        double post = 0.1, double phase = 0) {
  TaskParams t;
  t.id = id;
  t.period = period;
  t.deadline = period;
  t.phase = phase;
  Segment s;
  s.compute_before = pre;
  s.cs.reads = reads;
  s.cs.writes = writes;
  s.cs.length = cs_len;
  t.segments.push_back(s);
  t.final_compute = post;
  return t;
}

SimResult run_sim(TaskSystem& sys, ProtocolKind kind, SimConfig cfg) {
  sys.validate();
  ProtocolAdapter proto(kind, sys, /*validate=*/true);
  Simulator sim(sys, proto, cfg);
  return sim.run();
}

TEST(SimulatorBasic, SingleTaskCompletesEveryJob) {
  TaskSystem sys;
  sys.num_processors = 1;
  sys.cluster_size = 1;
  sys.num_resources = 1;
  sys.tasks.push_back(simple_task(0, 10, 3));
  SimConfig cfg;
  cfg.horizon = 100;
  const SimResult res = run_sim(sys, ProtocolKind::RwRnlp, cfg);
  EXPECT_EQ(res.per_task[0].jobs_released, 10u);
  EXPECT_EQ(res.per_task[0].jobs_completed, 10u);
  EXPECT_EQ(res.per_task[0].deadline_misses, 0u);
}

TEST(SimulatorBasic, OverloadedProcessorMissesDeadlines) {
  TaskSystem sys;
  sys.num_processors = 1;
  sys.cluster_size = 1;
  sys.num_resources = 1;
  sys.tasks.push_back(simple_task(0, 10, 8));
  sys.tasks.push_back(simple_task(1, 10, 8, 9));  // together U = 1.6
  SimConfig cfg;
  cfg.horizon = 100;
  const SimResult res = run_sim(sys, ProtocolKind::RwRnlp, cfg);
  EXPECT_GT(res.per_task[0].deadline_misses + res.per_task[1].deadline_misses,
            0u);
}

TEST(SimulatorBasic, EdfPrefersEarlierDeadline) {
  // Two tasks, one processor: the short-deadline task preempts the long one
  // and never misses, while the long-deadline task absorbs the interference.
  TaskSystem sys;
  sys.num_processors = 1;
  sys.cluster_size = 1;
  sys.num_resources = 1;
  sys.tasks.push_back(simple_task(0, 4, 1));    // tight
  sys.tasks.push_back(simple_task(1, 20, 10));  // long
  SimConfig cfg;
  cfg.horizon = 200;
  const SimResult res = run_sim(sys, ProtocolKind::RwRnlp, cfg);
  EXPECT_EQ(res.per_task[0].deadline_misses, 0u);
  EXPECT_EQ(res.per_task[0].jobs_completed, 50u);
  EXPECT_EQ(res.per_task[1].deadline_misses, 0u);  // U = 0.75, EDF fits
}

TEST(SimulatorBasic, FixedPriorityRespectsPriorities) {
  TaskSystem sys;
  sys.num_processors = 1;
  sys.cluster_size = 1;
  sys.num_resources = 1;
  auto hi = simple_task(0, 10, 4);
  hi.fixed_priority = 0;
  auto lo = simple_task(1, 10, 4);
  lo.fixed_priority = 1;
  sys.tasks.push_back(hi);
  sys.tasks.push_back(lo);
  SimConfig cfg;
  cfg.horizon = 100;
  cfg.policy = SchedPolicy::FixedPriority;
  const SimResult res = run_sim(sys, ProtocolKind::RwRnlp, cfg);
  EXPECT_EQ(res.per_task[0].deadline_misses, 0u);
  EXPECT_EQ(res.per_task[1].deadline_misses, 0u);
}

TEST(SimulatorBasic, TwoProcessorsRunTasksInParallel) {
  TaskSystem sys;
  sys.num_processors = 2;
  sys.cluster_size = 2;
  sys.num_resources = 1;
  sys.tasks.push_back(simple_task(0, 10, 9));
  sys.tasks.push_back(simple_task(1, 10, 9));
  SimConfig cfg;
  cfg.horizon = 100;
  const SimResult res = run_sim(sys, ProtocolKind::RwRnlp, cfg);
  EXPECT_EQ(res.per_task[0].deadline_misses, 0u);
  EXPECT_EQ(res.per_task[1].deadline_misses, 0u);
}

TEST(SimulatorBasic, UncontendedCriticalSectionHasZeroDelay) {
  TaskSystem sys;
  sys.num_processors = 1;
  sys.cluster_size = 1;
  sys.num_resources = 2;
  sys.tasks.push_back(task_with_cs(0, 10, 1, 2, ResourceSet(2),
                                   ResourceSet(2, {0})));
  SimConfig cfg;
  cfg.horizon = 100;
  const SimResult res = run_sim(sys, ProtocolKind::RwRnlp, cfg);
  EXPECT_EQ(res.per_task[0].jobs_completed, 10u);
  ASSERT_FALSE(res.per_task[0].write_acq_delay.empty());
  EXPECT_DOUBLE_EQ(res.per_task[0].write_acq_delay.max(), 0.0);
}

TEST(SimulatorBasic, SpinBlockingMeasuredUnderContention) {
  // Two tasks on two processors, same write resource, overlapping phases:
  // the later one spins (Def. 2).
  TaskSystem sys;
  sys.num_processors = 2;
  sys.cluster_size = 2;
  sys.num_resources = 1;
  sys.tasks.push_back(task_with_cs(0, 20, 1.0, 4, ResourceSet(1),
                                   ResourceSet(1, {0})));
  sys.tasks.push_back(task_with_cs(1, 20, 1.5, 4, ResourceSet(1),
                                   ResourceSet(1, {0})));
  SimConfig cfg;
  cfg.horizon = 20;  // one job each
  cfg.wait = WaitMode::Spin;
  const SimResult res = run_sim(sys, ProtocolKind::RwRnlp, cfg);
  // Task 1 issued at 1.5 but waits until 5.0 for the lock: 3.5 spinning.
  ASSERT_FALSE(res.per_task[1].write_acq_delay.empty());
  EXPECT_NEAR(res.per_task[1].write_acq_delay.max(), 3.5, 1e-6);
  ASSERT_FALSE(res.per_task[1].s_blocking.empty());
  EXPECT_NEAR(res.per_task[1].s_blocking.max(), 3.5, 1e-6);
}

TEST(SimulatorBasic, NonPreemptiveSpinnerCausesPiBlocking) {
  // One processor: a low-priority job enters a non-preemptive critical
  // section just before a high-priority job is released (Def. 1 example
  // from Sec. 2).
  TaskSystem sys;
  sys.num_processors = 1;
  sys.cluster_size = 1;
  sys.num_resources = 1;
  // Low-priority (long deadline), CS [1, 6).
  sys.tasks.push_back(task_with_cs(0, 50, 1, 5, ResourceSet(1),
                                   ResourceSet(1, {0}), 0.1));
  // High-priority (short deadline), released at t=2 mid-CS.
  auto hi = simple_task(1, 50, 1, 10);
  hi.phase = 2;
  sys.tasks.push_back(hi);
  SimConfig cfg;
  cfg.horizon = 50;
  cfg.wait = WaitMode::Spin;
  const SimResult res = run_sim(sys, ProtocolKind::RwRnlp, cfg);
  // The high-priority job is pi-blocked from its release (t=2) until the
  // critical section ends (t=6).
  ASSERT_FALSE(res.per_task[1].pi_blocking.empty());
  EXPECT_NEAR(res.per_task[1].pi_blocking.max(), 4.0, 1e-6);
}

TEST(SimulatorBasic, ReadersShareUnderRwRnlpButSerializeUnderMutexRnlp) {
  // Two readers of the same resource on two processors: under the R/W RNLP
  // both proceed at once (zero delay); under the mutex RNLP one waits.
  TaskSystem sys;
  sys.num_processors = 2;
  sys.cluster_size = 2;
  sys.num_resources = 1;
  sys.tasks.push_back(task_with_cs(0, 20, 1, 4, ResourceSet(1, {0}),
                                   ResourceSet(1)));
  sys.tasks.push_back(task_with_cs(1, 20, 1, 4, ResourceSet(1, {0}),
                                   ResourceSet(1)));
  SimConfig cfg;
  cfg.horizon = 20;

  {
    TaskSystem s = sys;
    const SimResult res = run_sim(s, ProtocolKind::RwRnlp, cfg);
    EXPECT_DOUBLE_EQ(res.max_read_acq_delay(), 0.0);
  }
  {
    TaskSystem s = sys;
    const SimResult res = run_sim(s, ProtocolKind::MutexRnlp, cfg);
    EXPECT_NEAR(res.max_write_acq_delay(), 4.0, 1e-6);  // reads as writes
  }
}

TEST(SimulatorBasic, GroupRwSerializesDisjointWrites) {
  // Writers of *different* resources: fine-grained locking runs them in
  // parallel; the group lock serializes them.
  TaskSystem sys;
  sys.num_processors = 2;
  sys.cluster_size = 2;
  sys.num_resources = 2;
  sys.tasks.push_back(task_with_cs(0, 20, 1, 4, ResourceSet(2),
                                   ResourceSet(2, {0})));
  sys.tasks.push_back(task_with_cs(1, 20, 1, 4, ResourceSet(2),
                                   ResourceSet(2, {1})));
  SimConfig cfg;
  cfg.horizon = 20;
  {
    TaskSystem s = sys;
    const SimResult res = run_sim(s, ProtocolKind::RwRnlp, cfg);
    EXPECT_DOUBLE_EQ(res.max_write_acq_delay(), 0.0);
  }
  {
    TaskSystem s = sys;
    const SimResult res = run_sim(s, ProtocolKind::GroupRw, cfg);
    EXPECT_NEAR(res.max_write_acq_delay(), 4.0, 1e-6);
  }
}

TEST(SimulatorBasic, SuspensionModeRunsToCompletion) {
  TaskSystem sys;
  sys.num_processors = 2;
  sys.cluster_size = 2;
  sys.num_resources = 1;
  sys.tasks.push_back(task_with_cs(0, 10, 1, 2, ResourceSet(1),
                                   ResourceSet(1, {0})));
  sys.tasks.push_back(task_with_cs(1, 10, 1.2, 2, ResourceSet(1),
                                   ResourceSet(1, {0})));
  sys.tasks.push_back(simple_task(2, 10, 3));
  SimConfig cfg;
  cfg.horizon = 100;
  cfg.wait = WaitMode::Suspend;
  const SimResult res = run_sim(sys, ProtocolKind::RwRnlp, cfg);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(res.per_task[i].jobs_completed, 10u) << "task " << i;
  }
}

TEST(SimulatorBasic, ClusteredSchedulingKeepsTasksInTheirCluster) {
  // Two clusters of one processor each: tasks must not migrate across; an
  // overload in cluster 0 cannot be absorbed by idle cluster 1.
  TaskSystem sys;
  sys.num_processors = 2;
  sys.cluster_size = 1;
  sys.num_resources = 1;
  auto a = simple_task(0, 10, 6);
  auto b = simple_task(1, 10, 6);
  a.cluster = 0;
  b.cluster = 0;  // both crammed into cluster 0 (U = 1.2)
  sys.tasks.push_back(a);
  sys.tasks.push_back(b);
  SimConfig cfg;
  cfg.horizon = 100;
  const SimResult res = run_sim(sys, ProtocolKind::RwRnlp, cfg);
  EXPECT_GT(res.per_task[0].deadline_misses + res.per_task[1].deadline_misses,
            0u);
}

TEST(SimulatorBasic, ValidationRejectsBadSystems) {
  TaskSystem sys;
  sys.num_processors = 3;
  sys.cluster_size = 2;  // 3 % 2 != 0
  sys.num_resources = 1;
  sys.tasks.push_back(simple_task(0, 10, 1));
  EXPECT_THROW(sys.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace rwrnlp::sched
