// End-to-end tests for upgradeable critical sections in the simulator
// (Sec. 3.6 under real scheduling, P1/P2 and deep validation active).
#include <gtest/gtest.h>

#include "sched/simulator.hpp"

namespace rwrnlp::sched {
namespace {

TaskParams upgradeable_task(int id, double period, double pre,
                            double decide_len, double write_prob,
                            double write_len, const ResourceSet& footprint,
                            double phase = 0) {
  TaskParams t;
  t.id = id;
  t.period = period;
  t.deadline = period;
  t.phase = phase;
  Segment s;
  s.compute_before = pre;
  s.cs.reads = footprint;
  s.cs.writes = ResourceSet(footprint.universe());
  s.cs.length = decide_len;
  s.cs.upgradeable = true;
  s.cs.write_prob = write_prob;
  s.cs.write_segment_len = write_len;
  t.segments.push_back(s);
  t.final_compute = 0.1;
  return t;
}

TaskParams reader_task(int id, double period, double pre, double len,
                       const ResourceSet& reads, double phase = 0) {
  TaskParams t;
  t.id = id;
  t.period = period;
  t.deadline = period;
  t.phase = phase;
  Segment s;
  s.compute_before = pre;
  s.cs.reads = reads;
  s.cs.writes = ResourceSet(reads.universe());
  s.cs.length = len;
  t.segments.push_back(s);
  t.final_compute = 0.1;
  return t;
}

SimResult run(TaskSystem& sys, ProtocolKind kind, double horizon = 300,
              std::uint64_t seed = 1) {
  sys.validate();
  ProtocolAdapter proto(kind, sys, true);
  SimConfig cfg;
  cfg.horizon = horizon;
  cfg.wait = WaitMode::Spin;
  cfg.validate = true;
  cfg.deep_validate = true;
  cfg.seed = seed;
  Simulator sim(sys, proto, cfg);
  return sim.run();
}

TEST(UpgradeableSim, NeverUpgradingBehavesLikeAReader) {
  TaskSystem sys;
  sys.num_processors = 2;
  sys.cluster_size = 2;
  sys.num_resources = 1;
  sys.tasks.push_back(upgradeable_task(0, 10, 0.5, 1, /*write_prob=*/0, 2,
                                       ResourceSet(1, {0})));
  sys.tasks.push_back(
      reader_task(1, 10, 0.7, 1, ResourceSet(1, {0})));
  const SimResult res = run(sys, ProtocolKind::RwRnlp);
  // Both complete every job; the plain reader shares with the optimistic
  // segment, so its delay stays zero.
  EXPECT_EQ(res.per_task[0].jobs_completed, res.per_task[0].jobs_released);
  EXPECT_EQ(res.per_task[1].jobs_completed, res.per_task[1].jobs_released);
  // The reader issued at 0.7 waits out the rest of the decision segment
  // (the pair's write half is entitled while it runs) but never a write
  // phase: delay = 1.5 - 0.7 = 0.8, well under a pessimistic 1 + 2.
  EXPECT_NEAR(res.per_task[1].read_acq_delay.max(), 0.8, 1e-6);
  // The upgradeable task's delays are write-grade samples (the pair is a
  // write-class request); one per job, all zero (idle at issuance).
  EXPECT_TRUE(res.per_task[0].read_acq_delay.empty());
  EXPECT_EQ(res.per_task[0].write_acq_delay.count(),
            res.per_task[0].jobs_completed);
  EXPECT_DOUBLE_EQ(res.per_task[0].write_acq_delay.max(), 0.0);
}

TEST(UpgradeableSim, AlwaysUpgradingRunsWriteSegments) {
  TaskSystem sys;
  sys.num_processors = 2;
  sys.cluster_size = 2;
  sys.num_resources = 1;
  sys.tasks.push_back(upgradeable_task(0, 10, 0.5, 1, /*write_prob=*/1, 2,
                                       ResourceSet(1, {0})));
  sys.tasks.push_back(reader_task(1, 10, 0.7, 1, ResourceSet(1, {0})));
  const SimResult res = run(sys, ProtocolKind::RwRnlp);
  EXPECT_EQ(res.per_task[0].jobs_completed, res.per_task[0].jobs_released);
  // Every job records a read-half satisfaction and a write-half grant,
  // both as write-grade samples.
  EXPECT_EQ(res.per_task[0].write_acq_delay.count(),
            2 * res.per_task[0].jobs_completed);
}

TEST(UpgradeableSim, PessimisticFallbackUnderMutexProtocols) {
  TaskSystem sys;
  sys.num_processors = 2;
  sys.cluster_size = 2;
  sys.num_resources = 1;
  sys.tasks.push_back(upgradeable_task(0, 10, 0.5, 1, 0.5, 2,
                                       ResourceSet(1, {0})));
  sys.tasks.push_back(reader_task(1, 10, 0.7, 1, ResourceSet(1, {0})));
  const SimResult res = run(sys, ProtocolKind::MutexRnlp);
  EXPECT_EQ(res.per_task[0].jobs_completed, res.per_task[0].jobs_released);
  // All delays are write-grade (pessimistic, no read half).
  EXPECT_TRUE(res.per_task[0].read_acq_delay.empty());
  // And the reader behind it waits for the whole combined section.
  EXPECT_NEAR(res.per_task[1].write_acq_delay.max(), 2.8, 1e-6);
}

TEST(UpgradeableSim, OptimismReducesReaderBlocking) {
  // Same workload under the R/W RNLP (upgrades, write_prob 0.2) vs the
  // pessimistic mutex RNLP: the streaming reader's blocking must be lower
  // with upgrades.
  auto make = [] {
    TaskSystem sys;
    sys.num_processors = 3;
    sys.cluster_size = 3;
    sys.num_resources = 2;
    sys.tasks.push_back(upgradeable_task(0, 7, 0.5, 1.2, 0.2, 1.5,
                                         ResourceSet(2, {0, 1})));
    sys.tasks.push_back(
        reader_task(1, 5, 0.3, 0.8, ResourceSet(2, {0}), 0.2));
    sys.tasks.push_back(
        reader_task(2, 6, 0.4, 0.8, ResourceSet(2, {1}), 0.4));
    return sys;
  };
  TaskSystem a = make();
  const SimResult rw = run(a, ProtocolKind::RwRnlp, 600, 9);
  TaskSystem b = make();
  const SimResult mtx = run(b, ProtocolKind::MutexRnlp, 600, 9);
  auto mean_block = [](const SimResult& r) {
    double sum = 0;
    std::size_t n = 0;
    for (int task : {1, 2}) {
      const auto& m = r.per_task[static_cast<std::size_t>(task)];
      const auto& s =
          m.read_acq_delay.empty() ? m.write_acq_delay : m.read_acq_delay;
      if (!s.empty()) {
        sum += s.mean() * static_cast<double>(s.count());
        n += s.count();
      }
    }
    return n ? sum / static_cast<double>(n) : 0.0;
  };
  EXPECT_LT(mean_block(rw), mean_block(mtx));
}

TEST(UpgradeableSim, BoundsStillHoldWithUpgrades) {
  TaskSystem sys;
  sys.num_processors = 4;
  sys.cluster_size = 4;
  sys.num_resources = 2;
  for (int i = 0; i < 3; ++i) {
    sys.tasks.push_back(upgradeable_task(i, 8 + i, 0.3 + 0.2 * i, 0.6, 0.5,
                                         0.8, ResourceSet(2, {0, 1}),
                                         0.1 * i));
  }
  sys.tasks.push_back(reader_task(3, 6, 0.4, 0.5, ResourceSet(2, {0}), 0.3));
  const SimResult res = run(sys, ProtocolKind::RwRnlp, 400, 3);
  const double lr = sys.l_read_max();
  const double lw = sys.l_write_max();
  // The upgradeable pair has write-grade worst case; plain readers keep
  // their Thm. 1 guarantee.
  EXPECT_LE(res.per_task[3].read_acq_delay.max(), lr + lw + 1e-6);
  EXPECT_LE(res.max_write_acq_delay(), 3 * (lr + lw) + 1e-6);
  for (const auto& m : res.per_task) EXPECT_GT(m.jobs_completed, 0u);
}

}  // namespace
}  // namespace rwrnlp::sched
