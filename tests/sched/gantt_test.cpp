#include "sched/gantt.hpp"

#include <gtest/gtest.h>

#include "sched/simulator.hpp"

namespace rwrnlp::sched {
namespace {

TaskSystem one_task_system() {
  TaskSystem sys;
  sys.num_processors = 1;
  sys.cluster_size = 1;
  sys.num_resources = 1;
  TaskParams t;
  t.id = 0;
  t.period = 10;
  t.deadline = 10;
  t.final_compute = 4;
  sys.tasks.push_back(t);
  return sys;
}

TEST(ScheduleLog, MergesContiguousIntervals) {
  ScheduleLog log;
  log.add(0, 0, 1, IntervalKind::Compute);
  log.add(0, 1, 2, IntervalKind::Compute);
  ASSERT_EQ(log.intervals().size(), 1u);
  EXPECT_DOUBLE_EQ(log.intervals()[0].end, 2.0);
  log.add(0, 2, 3, IntervalKind::Critical);  // kind change: new interval
  EXPECT_EQ(log.intervals().size(), 2u);
  log.add(1, 3, 4, IntervalKind::Critical);  // task change: new interval
  EXPECT_EQ(log.intervals().size(), 3u);
}

TEST(ScheduleLog, IgnoresEmptyIntervals) {
  ScheduleLog log;
  log.add(0, 5, 5, IntervalKind::Compute);
  EXPECT_TRUE(log.empty());
}

TEST(ScheduleLog, RenderPlacesSymbols) {
  TaskSystem sys = one_task_system();
  ScheduleLog log;
  log.add(0, 0, 5, IntervalKind::Compute);
  log.add(0, 5, 10, IntervalKind::Critical);
  const std::string out = log.render(sys, 0, 10, 10);
  // Row for T0: 5 compute cells then 5 critical cells.
  EXPECT_NE(out.find("=====#####"), std::string::npos) << out;
}

TEST(ScheduleLog, RenderWindowClipping) {
  TaskSystem sys = one_task_system();
  ScheduleLog log;
  log.add(0, -5, 20, IntervalKind::Compute);  // exceeds the window
  const std::string out = log.render(sys, 0, 10, 10);
  EXPECT_NE(out.find("=========="), std::string::npos);
}

TEST(ScheduleLog, RejectsBadWindow) {
  TaskSystem sys = one_task_system();
  ScheduleLog log;
  EXPECT_THROW(log.render(sys, 5, 5, 10), std::invalid_argument);
  EXPECT_THROW(log.render(sys, 0, 10, 1), std::invalid_argument);
}

TEST(ScheduleLog, SimulatorRecordsExpectedPhases) {
  // Two contending writers on two processors: the later one records a
  // spinning interval followed by its critical section.
  TaskSystem sys;
  sys.num_processors = 2;
  sys.cluster_size = 2;
  sys.num_resources = 1;
  for (int i = 0; i < 2; ++i) {
    TaskParams t;
    t.id = i;
    t.period = 30;
    t.deadline = 30;
    t.phase = static_cast<double>(i);
    Segment s;
    s.compute_before = 1;
    s.cs.reads = ResourceSet(1);
    s.cs.writes = ResourceSet(1, {0});
    s.cs.length = 4;
    t.segments.push_back(s);
    t.final_compute = 1;
    sys.tasks.push_back(t);
  }
  sys.validate();
  ProtocolAdapter proto(ProtocolKind::RwRnlp, sys, true);
  SimConfig cfg;
  cfg.horizon = 30;
  cfg.wait = WaitMode::Spin;
  cfg.record_schedule = true;
  Simulator sim(sys, proto, cfg);
  const SimResult res = sim.run();

  bool saw_spin = false, saw_cs = false, saw_compute = false;
  for (const auto& iv : res.schedule.intervals()) {
    if (iv.kind == IntervalKind::Spinning) {
      saw_spin = true;
      EXPECT_EQ(iv.task, 1);  // only the later writer spins
      EXPECT_NEAR(iv.start, 2.0, 1e-6);
      EXPECT_NEAR(iv.end, 5.0, 1e-6);  // until the first CS ends at 1+4
    }
    saw_cs |= iv.kind == IntervalKind::Critical;
    saw_compute |= iv.kind == IntervalKind::Compute;
  }
  EXPECT_TRUE(saw_spin);
  EXPECT_TRUE(saw_cs);
  EXPECT_TRUE(saw_compute);
  const std::string picture = res.schedule.render(sys, 0, 12, 48);
  EXPECT_NE(picture.find('s'), std::string::npos);
  EXPECT_NE(picture.find('#'), std::string::npos);
}

}  // namespace
}  // namespace rwrnlp::sched
