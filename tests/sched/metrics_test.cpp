// Tests for the simulator's per-task metrics (response time, tardiness,
// acquisition-delay accounting) on hand-computable scenarios.
#include <gtest/gtest.h>

#include "sched/simulator.hpp"

namespace rwrnlp::sched {
namespace {

TEST(Metrics, ResponseTimeOfIsolatedTask) {
  TaskSystem sys;
  sys.num_processors = 1;
  sys.cluster_size = 1;
  sys.num_resources = 1;
  TaskParams t;
  t.id = 0;
  t.period = 10;
  t.deadline = 10;
  t.final_compute = 3;
  sys.tasks.push_back(t);
  sys.validate();
  ProtocolAdapter proto(ProtocolKind::RwRnlp, sys, true);
  SimConfig cfg;
  cfg.horizon = 100;
  Simulator sim(sys, proto, cfg);
  const SimResult res = sim.run();
  ASSERT_EQ(res.per_task[0].response_time.count(), 10u);
  EXPECT_DOUBLE_EQ(res.per_task[0].response_time.max(), 3.0);
  EXPECT_DOUBLE_EQ(res.per_task[0].tardiness.max(), 0.0);
}

TEST(Metrics, PreemptedTaskResponseTimeIncludesInterference) {
  // High-priority task (period 4, wcet 1) preempts the low one (wcet 3):
  // the low job sees 3 compute + 1 interference = response 4 at worst.
  TaskSystem sys;
  sys.num_processors = 1;
  sys.cluster_size = 1;
  sys.num_resources = 1;
  TaskParams hi;
  hi.id = 0;
  hi.period = 4;
  hi.deadline = 4;
  hi.final_compute = 1;
  TaskParams lo;
  lo.id = 1;
  lo.period = 12;
  lo.deadline = 12;
  lo.final_compute = 3;
  sys.tasks.push_back(hi);
  sys.tasks.push_back(lo);
  sys.validate();
  ProtocolAdapter proto(ProtocolKind::RwRnlp, sys, true);
  SimConfig cfg;
  cfg.horizon = 120;
  Simulator sim(sys, proto, cfg);
  const SimResult res = sim.run();
  EXPECT_DOUBLE_EQ(res.per_task[0].response_time.max(), 1.0);
  EXPECT_DOUBLE_EQ(res.per_task[1].response_time.max(), 4.0);
  EXPECT_DOUBLE_EQ(res.per_task[1].tardiness.max(), 0.0);
}

TEST(Metrics, TardinessOfOverloadedTask) {
  TaskSystem sys;
  sys.num_processors = 1;
  sys.cluster_size = 1;
  sys.num_resources = 1;
  TaskParams t;
  t.id = 0;
  t.period = 10;
  t.deadline = 2;  // tight: wcet 3 always misses by 1
  t.final_compute = 3;
  sys.tasks.push_back(t);
  sys.validate();
  ProtocolAdapter proto(ProtocolKind::RwRnlp, sys, true);
  SimConfig cfg;
  cfg.horizon = 50;
  Simulator sim(sys, proto, cfg);
  const SimResult res = sim.run();
  EXPECT_DOUBLE_EQ(res.per_task[0].tardiness.max(), 1.0);
  EXPECT_EQ(res.per_task[0].deadline_misses,
            res.per_task[0].jobs_completed);
}

TEST(Metrics, BlockingShowsUpInResponseTime) {
  // Two writers contending: the later one's response time includes its
  // acquisition delay.
  TaskSystem sys;
  sys.num_processors = 2;
  sys.cluster_size = 2;
  sys.num_resources = 1;
  for (int i = 0; i < 2; ++i) {
    TaskParams t;
    t.id = i;
    t.period = 20;
    t.deadline = 20;
    t.phase = 0.5 * i;
    Segment s;
    s.compute_before = 0.5;
    s.cs.reads = ResourceSet(1);
    s.cs.writes = ResourceSet(1, {0});
    s.cs.length = 3;
    t.segments.push_back(s);
    t.final_compute = 0.5;
    sys.tasks.push_back(t);
  }
  sys.validate();
  ProtocolAdapter proto(ProtocolKind::RwRnlp, sys, true);
  SimConfig cfg;
  cfg.horizon = 20;
  cfg.wait = WaitMode::Spin;
  Simulator sim(sys, proto, cfg);
  const SimResult res = sim.run();
  // Task 0: 0.5 + 3 + 0.5 = 4.  Task 1 (released at 0.5): issues at 1.0,
  // waits until 3.5 (2.5 spinning), CS until 6.5, +0.5 compute -> done at
  // 7.0, i.e. response 6.5.
  EXPECT_NEAR(res.per_task[0].response_time.max(), 4.0, 1e-6);
  EXPECT_NEAR(res.per_task[1].response_time.max(), 6.5, 1e-6);
  EXPECT_NEAR(res.per_task[1].write_acq_delay.max(), 2.5, 1e-6);
}

}  // namespace
}  // namespace rwrnlp::sched
