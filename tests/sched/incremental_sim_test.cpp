// End-to-end tests for incremental critical sections in the simulator
// (Sec. 3.7 under real scheduling).
#include <gtest/gtest.h>

#include "sched/simulator.hpp"

namespace rwrnlp::sched {
namespace {

TaskParams incremental_task(int id, double period, double pre, double len,
                            const ResourceSet& writes, double phase = 0) {
  TaskParams t;
  t.id = id;
  t.period = period;
  t.deadline = period;
  t.phase = phase;
  Segment s;
  s.compute_before = pre;
  s.cs.reads = ResourceSet(writes.universe());
  s.cs.writes = writes;
  s.cs.length = len;
  s.cs.incremental = true;
  t.segments.push_back(s);
  t.final_compute = 0.1;
  return t;
}

TaskParams plain_task(int id, double period, double pre, double len,
                      const ResourceSet& reads, const ResourceSet& writes,
                      double phase = 0) {
  TaskParams t;
  t.id = id;
  t.period = period;
  t.deadline = period;
  t.phase = phase;
  Segment s;
  s.compute_before = pre;
  s.cs.reads = reads;
  s.cs.writes = writes;
  s.cs.length = len;
  t.segments.push_back(s);
  t.final_compute = 0.1;
  return t;
}

SimResult run(TaskSystem& sys, ProtocolKind kind, double horizon = 300) {
  sys.validate();
  ProtocolAdapter proto(kind, sys, true);
  SimConfig cfg;
  cfg.horizon = horizon;
  cfg.wait = WaitMode::Spin;
  cfg.validate = true;
  Simulator sim(sys, proto, cfg);
  return sim.run();
}

TEST(IncrementalSim, UncontendedWalkCompletesWithZeroWaits) {
  TaskSystem sys;
  sys.num_processors = 1;
  sys.cluster_size = 1;
  sys.num_resources = 3;
  sys.tasks.push_back(
      incremental_task(0, 10, 0.5, 1.5, ResourceSet(3, {0, 1, 2})));
  const SimResult res = run(sys, ProtocolKind::RwRnlp);
  EXPECT_EQ(res.per_task[0].jobs_completed, res.per_task[0].jobs_released);
  // Three grants per job, all immediate.
  EXPECT_EQ(res.per_task[0].write_acq_delay.count(),
            3 * res.per_task[0].jobs_completed);
  EXPECT_DOUBLE_EQ(res.per_task[0].write_acq_delay.max(), 0.0);
  EXPECT_EQ(res.per_task[0].deadline_misses, 0u);
}

TEST(IncrementalSim, SparesResourcesItHasNotReachedYet) {
  // The walker holds l0 first; a task using only l2 (which the walker has
  // declared but not yet acquired) cannot be satisfied while the walker is
  // entitled — the priority-ceiling behavior — but a task whose window
  // avoids the walker entirely runs free.
  TaskSystem sys;
  sys.num_processors = 2;
  sys.cluster_size = 2;
  sys.num_resources = 3;
  sys.tasks.push_back(
      incremental_task(0, 20, 0.5, 1.5, ResourceSet(3, {0, 1, 2})));
  // Writer of l2 released so its request lands mid-walk.
  sys.tasks.push_back(plain_task(1, 20, 0.2, 0.5, ResourceSet(3),
                                 ResourceSet(3, {2}), 0.8));
  const SimResult res = run(sys, ProtocolKind::RwRnlp, 200);
  EXPECT_EQ(res.per_task[0].jobs_completed, res.per_task[0].jobs_released);
  EXPECT_EQ(res.per_task[1].jobs_completed, res.per_task[1].jobs_released);
  // The l2 writer waited for the walker's completion: issued at 1.0,
  // walker (issued 0.5, slices of 0.5) completes at 2.0 -> delay 1.0.
  EXPECT_NEAR(res.per_task[1].write_acq_delay.max(), 1.0, 1e-6);
}

TEST(IncrementalSim, GrantWaitsForConflictingHolderMidWalk) {
  // A reader holds l1 when the walker reaches it: the walk stalls exactly
  // until the reader completes, then proceeds (Cor. 1: nothing overtakes).
  TaskSystem sys;
  sys.num_processors = 2;
  sys.cluster_size = 2;
  sys.num_resources = 2;
  sys.tasks.push_back(
      incremental_task(0, 30, 0.5, 1.0, ResourceSet(2, {0, 1})));
  // Reader of l1: issues at 0.3, holds for 2.0 (until 2.3).
  sys.tasks.push_back(plain_task(1, 30, 0.1, 2.0, ResourceSet(2, {1}),
                                 ResourceSet(2), 0.2));
  const SimResult res = run(sys, ProtocolKind::RwRnlp, 30);
  // Walker: issues at 0.5 (grant l0 immediate), slice [0.5, 1.0), requests
  // l1 at 1.0, granted at 2.3 (wait 1.3), slice [2.3, 2.8).
  ASSERT_EQ(res.per_task[0].write_acq_delay.count(), 2u);
  EXPECT_NEAR(res.per_task[0].write_acq_delay.max(), 1.3, 1e-6);
  EXPECT_EQ(res.per_task[0].jobs_completed, 1u);
}

TEST(IncrementalSim, FallsBackToAllAtOnceUnderMutexProtocols) {
  TaskSystem sys;
  sys.num_processors = 2;
  sys.cluster_size = 2;
  sys.num_resources = 3;
  sys.tasks.push_back(
      incremental_task(0, 10, 0.5, 1.5, ResourceSet(3, {0, 1, 2})));
  sys.tasks.push_back(plain_task(1, 10, 0.2, 0.5, ResourceSet(3),
                                 ResourceSet(3, {2}), 0.8));
  const SimResult res = run(sys, ProtocolKind::MutexRnlp, 200);
  EXPECT_EQ(res.per_task[0].jobs_completed, res.per_task[0].jobs_released);
  // All-at-once: exactly one acquisition sample per job.
  EXPECT_EQ(res.per_task[0].write_acq_delay.count(),
            res.per_task[0].jobs_completed);
}

TEST(IncrementalSim, RunsUnderSuspensionWithDonation) {
  TaskSystem sys;
  sys.num_processors = 2;
  sys.cluster_size = 2;
  sys.num_resources = 2;
  sys.tasks.push_back(
      incremental_task(0, 8, 0.3, 1.0, ResourceSet(2, {0, 1})));
  sys.tasks.push_back(plain_task(1, 6, 0.2, 0.6, ResourceSet(2, {1}),
                                 ResourceSet(2), 0.1));
  sys.validate();
  ProtocolAdapter proto(ProtocolKind::RwRnlp, sys, true);
  SimConfig cfg;
  cfg.horizon = 200;
  cfg.wait = WaitMode::Suspend;
  cfg.validate = true;
  Simulator sim(sys, proto, cfg);
  const SimResult res = sim.run();
  for (const auto& m : res.per_task) {
    EXPECT_GT(m.jobs_completed, 0u);
  }
}

}  // namespace
}  // namespace rwrnlp::sched
