// Unit tests of the protocol adapters in isolation.
#include "sched/protocol.hpp"

#include <gtest/gtest.h>

namespace rwrnlp::sched {
namespace {

TaskSystem tiny_system() {
  TaskSystem sys;
  sys.num_processors = 2;
  sys.cluster_size = 2;
  sys.num_resources = 3;
  TaskParams t;
  t.id = 0;
  t.period = 10;
  t.deadline = 10;
  Segment read_seg;
  read_seg.compute_before = 1;
  read_seg.cs.reads = ResourceSet(3, {0, 1});
  read_seg.cs.writes = ResourceSet(3);
  read_seg.cs.length = 1;
  t.segments.push_back(read_seg);
  Segment write_seg;
  write_seg.compute_before = 1;
  write_seg.cs.reads = ResourceSet(3);
  write_seg.cs.writes = ResourceSet(3, {0, 2});
  write_seg.cs.length = 1;
  t.segments.push_back(write_seg);
  t.final_compute = 1;
  sys.tasks.push_back(t);
  return sys;
}

CriticalSection read_cs() {
  CriticalSection cs;
  cs.reads = ResourceSet(3, {0, 1});
  cs.writes = ResourceSet(3);
  cs.length = 1;
  return cs;
}

CriticalSection write_cs() {
  CriticalSection cs;
  cs.reads = ResourceSet(3);
  cs.writes = ResourceSet(3, {0, 2});
  cs.length = 1;
  return cs;
}

TEST(ProtocolAdapter, RwRnlpBuildsReadShareClosure) {
  const TaskSystem sys = tiny_system();
  ProtocolAdapter proto(ProtocolKind::RwRnlp, sys, true);
  // The declared read request {l0, l1} makes l0 ~ l1; a write touching l0
  // must expand to {l0, l1} plus its own resources.
  const auto id = proto.issue(1, write_cs());
  EXPECT_EQ(proto.engine().request(id).domain, ResourceSet(3, {0, 1, 2}));
  proto.complete(2, id);
}

TEST(ProtocolAdapter, PlaceholderVariantKeepsDomainNarrow) {
  const TaskSystem sys = tiny_system();
  ProtocolAdapter proto(ProtocolKind::RwRnlpPlaceholders, sys, true);
  const auto id = proto.issue(1, write_cs());
  EXPECT_EQ(proto.engine().request(id).domain, ResourceSet(3, {0, 2}));
  proto.complete(2, id);
}

TEST(ProtocolAdapter, MutexRnlpTreatsReadsAsWrites) {
  const TaskSystem sys = tiny_system();
  ProtocolAdapter proto(ProtocolKind::MutexRnlp, sys, true);
  EXPECT_TRUE(proto.treated_as_write(read_cs()));
  const auto r1 = proto.issue(1, read_cs());
  const auto r2 = proto.issue(2, read_cs());
  EXPECT_TRUE(proto.engine().is_satisfied(r1));
  EXPECT_FALSE(proto.engine().is_satisfied(r2));  // readers serialize
  proto.complete(3, r1);
  EXPECT_TRUE(proto.engine().is_satisfied(r2));
  proto.complete(4, r2);
}

TEST(ProtocolAdapter, GroupRwSharesReadersAcrossDisjointResources) {
  const TaskSystem sys = tiny_system();
  ProtocolAdapter proto(ProtocolKind::GroupRw, sys, true);
  EXPECT_EQ(proto.engine().num_resources(), 1u);
  const auto r1 = proto.issue(1, read_cs());
  const auto r2 = proto.issue(2, read_cs());
  EXPECT_TRUE(proto.engine().is_satisfied(r1));
  EXPECT_TRUE(proto.engine().is_satisfied(r2));  // R/W group lock: share
  const auto w = proto.issue(3, write_cs());
  EXPECT_FALSE(proto.engine().is_satisfied(w));
  proto.complete(4, r1);
  proto.complete(5, r2);
  EXPECT_TRUE(proto.engine().is_satisfied(w));
  proto.complete(6, w);
}

TEST(ProtocolAdapter, GroupMutexSerializesEverything) {
  const TaskSystem sys = tiny_system();
  ProtocolAdapter proto(ProtocolKind::GroupMutex, sys, true);
  const auto r1 = proto.issue(1, read_cs());
  const auto r2 = proto.issue(2, read_cs());
  EXPECT_TRUE(proto.engine().is_satisfied(r1));
  EXPECT_FALSE(proto.engine().is_satisfied(r2));
  proto.complete(3, r1);
  proto.complete(4, r2);
}

TEST(ProtocolAdapter, TreatedAsWriteClassification) {
  const TaskSystem sys = tiny_system();
  ProtocolAdapter rw(ProtocolKind::RwRnlp, sys);
  EXPECT_FALSE(rw.treated_as_write(read_cs()));
  EXPECT_TRUE(rw.treated_as_write(write_cs()));
  ProtocolAdapter gm(ProtocolKind::GroupMutex, sys);
  EXPECT_TRUE(gm.treated_as_write(read_cs()));
}

TEST(ProtocolAdapter, ToStringNames) {
  EXPECT_STREQ(to_string(ProtocolKind::RwRnlp), "rw-rnlp");
  EXPECT_STREQ(to_string(ProtocolKind::RwRnlpPlaceholders), "rw-rnlp-ph");
  EXPECT_STREQ(to_string(ProtocolKind::MutexRnlp), "mutex-rnlp");
  EXPECT_STREQ(to_string(ProtocolKind::GroupRw), "group-rw");
  EXPECT_STREQ(to_string(ProtocolKind::GroupMutex), "group-mutex");
}

}  // namespace
}  // namespace rwrnlp::sched
