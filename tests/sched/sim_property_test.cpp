// Randomized end-to-end simulation sweeps: generated task systems run under
// every protocol and both waiting modes with full validation (engine
// structural checks + P1/P2 on every event), and the R/W RNLP acquisition
// delays are checked against Theorems 1 and 2.
#include <gtest/gtest.h>

#include <sstream>

#include "sched/simulator.hpp"
#include "tasksys/generator.hpp"

namespace rwrnlp::sched {
namespace {

struct SimSweepParam {
  std::uint64_t seed;
  ProtocolKind protocol;
  WaitMode wait;
  std::size_t m;
  std::size_t c;
  double read_ratio;
  double upgradeable_prob = 0;
  double incremental_prob = 0;
};

std::string name_of(const ::testing::TestParamInfo<SimSweepParam>& info) {
  const auto& p = info.param;
  std::ostringstream os;
  os << to_string(p.protocol) << '_'
     << (p.wait == WaitMode::Spin ? "spin" : "susp") << "_m" << p.m << "c"
     << p.c << "_rr" << static_cast<int>(p.read_ratio * 100) << "_u"
     << static_cast<int>(p.upgradeable_prob * 100) << "_i"
     << static_cast<int>(p.incremental_prob * 100) << "_s" << p.seed;
  std::string s = os.str();
  for (char& ch : s)
    if (ch == '-') ch = '_';
  return s;
}

class SimSweep : public ::testing::TestWithParam<SimSweepParam> {};

TEST_P(SimSweep, RunsValidatedAndWithinBounds) {
  const auto& p = GetParam();
  Rng rng(p.seed);
  tasksys::GeneratorConfig gc;
  gc.num_tasks = 2 * p.m;
  gc.total_utilization = 0.45 * static_cast<double>(p.m);
  gc.num_processors = p.m;
  gc.cluster_size = p.c;
  gc.num_resources = 5;
  gc.read_ratio = p.read_ratio;
  gc.upgradeable_prob = p.upgradeable_prob;
  gc.incremental_prob = p.incremental_prob;
  gc.period_min = 10;
  gc.period_max = 50;
  const TaskSystem sys = tasksys::generate(rng, gc);

  ProtocolAdapter proto(p.protocol, sys, /*validate=*/true);
  SimConfig cfg;
  cfg.horizon = 400;
  cfg.wait = p.wait;
  cfg.validate = true;
  // Full Lemma-2 property checking (E1-E10, Cors. 1/2, Lemma 6) on every
  // protocol invocation of the simulation.
  cfg.deep_validate = true;
  cfg.release_jitter_frac = 0.1;
  cfg.seed = p.seed * 7 + 1;
  Simulator sim(sys, proto, cfg);
  const SimResult res = sim.run();

  // Liveness: the workload actually exercised the protocol and jobs
  // finished (a modest completion ratio guards against stalls without
  // requiring schedulability).
  EXPECT_GT(res.requests_issued, 0u);
  EXPECT_GT(res.jobs_completed, 0u);
  std::size_t released = 0, completed = 0;
  for (const auto& tm : res.per_task) {
    released += tm.jobs_released;
    completed += tm.jobs_completed;
  }
  EXPECT_GT(completed, released / 2);

  // Acquisition-delay bounds.  They are theorems for the R/W RNLP (both
  // variants) and for the mutex RNLP / group locks they follow from the
  // same analysis with all requests treated as writes.
  const double lr = sys.l_read_max();
  const double lw = sys.l_write_max();
  const double m = static_cast<double>(p.m);
  if (p.protocol == ProtocolKind::RwRnlp ||
      p.protocol == ProtocolKind::RwRnlpPlaceholders ||
      p.protocol == ProtocolKind::GroupRw) {
    EXPECT_LE(res.max_read_acq_delay(), lr + lw + 1e-6) << "Thm. 1";
    EXPECT_LE(res.max_write_acq_delay(), (m - 1) * (lr + lw) + 1e-6)
        << "Thm. 2";
  } else {
    // Mutex protocols: FIFO over at most m-1 earlier writers, each "write"
    // critical section bounded by L_max.
    const double lmax = std::max(lr, lw);
    EXPECT_LE(res.max_write_acq_delay(), (m - 1) * lmax + 1e-6);
  }
}

std::vector<SimSweepParam> sweep() {
  std::vector<SimSweepParam> out;
  const ProtocolKind kinds[] = {
      ProtocolKind::RwRnlp, ProtocolKind::RwRnlpPlaceholders,
      ProtocolKind::MutexRnlp, ProtocolKind::GroupRw,
      ProtocolKind::GroupMutex};
  for (const auto kind : kinds) {
    for (const auto wait : {WaitMode::Spin, WaitMode::Suspend}) {
      out.push_back({101, kind, wait, 4, 4, 0.5});
      out.push_back({202, kind, wait, 2, 2, 0.7});
    }
  }
  // Clustered and partitioned shapes with the headline protocol.
  for (const auto wait : {WaitMode::Spin, WaitMode::Suspend}) {
    out.push_back({301, ProtocolKind::RwRnlp, wait, 4, 2, 0.5});
    out.push_back({302, ProtocolKind::RwRnlp, wait, 4, 1, 0.5});
    out.push_back({303, ProtocolKind::RwRnlp, wait, 8, 4, 0.3});
  }
  // Read-heavy and write-heavy extremes.
  out.push_back({401, ProtocolKind::RwRnlp, WaitMode::Spin, 4, 4, 1.0});
  out.push_back({402, ProtocolKind::RwRnlp, WaitMode::Spin, 4, 4, 0.0});
  // Workloads with upgradeable and incremental sections (Secs. 3.6/3.7),
  // under the supporting protocol and under the pessimistic fallbacks.
  for (const auto wait : {WaitMode::Spin, WaitMode::Suspend}) {
    out.push_back({501, ProtocolKind::RwRnlp, wait, 4, 4, 0.4, 0.4, 0.0});
    out.push_back({502, ProtocolKind::RwRnlp, wait, 4, 4, 0.4, 0.0, 0.5});
    out.push_back({503, ProtocolKind::RwRnlp, wait, 4, 4, 0.3, 0.3, 0.3});
  }
  out.push_back({504, ProtocolKind::MutexRnlp, WaitMode::Spin, 4, 4, 0.3,
                 0.3, 0.3});
  out.push_back({505, ProtocolKind::GroupRw, WaitMode::Suspend, 4, 4, 0.3,
                 0.3, 0.3});
  return out;
}

INSTANTIATE_TEST_SUITE_P(Sweep, SimSweep, ::testing::ValuesIn(sweep()),
                         name_of);

}  // namespace
}  // namespace rwrnlp::sched
