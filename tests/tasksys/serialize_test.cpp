#include "tasksys/serialize.hpp"

#include <gtest/gtest.h>

#include "tasksys/generator.hpp"

namespace rwrnlp::tasksys {
namespace {

sched::TaskSystem sample_system() {
  sched::TaskSystem sys;
  sys.num_processors = 4;
  sys.cluster_size = 2;
  sys.num_resources = 3;
  sched::TaskParams t;
  t.id = 7;
  t.period = 12.5;
  t.deadline = 10;
  t.phase = 0.25;
  t.fixed_priority = 3;
  t.cluster = 1;
  t.final_compute = 1.75;
  sched::Segment s1;
  s1.compute_before = 0.5;
  s1.cs.reads = ResourceSet(3, {0, 2});
  s1.cs.writes = ResourceSet(3);
  s1.cs.length = 0.3;
  sched::Segment s2;
  s2.compute_before = 0.1;
  s2.cs.reads = ResourceSet(3);
  s2.cs.writes = ResourceSet(3, {1});
  s2.cs.length = 0.2;
  t.segments.push_back(s1);
  t.segments.push_back(s2);
  sys.tasks.push_back(t);
  return sys;
}

void expect_same(const sched::TaskSystem& a, const sched::TaskSystem& b) {
  EXPECT_EQ(a.num_processors, b.num_processors);
  EXPECT_EQ(a.cluster_size, b.cluster_size);
  EXPECT_EQ(a.num_resources, b.num_resources);
  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  for (std::size_t i = 0; i < a.tasks.size(); ++i) {
    const auto& ta = a.tasks[i];
    const auto& tb = b.tasks[i];
    EXPECT_EQ(ta.id, tb.id);
    EXPECT_DOUBLE_EQ(ta.period, tb.period);
    EXPECT_DOUBLE_EQ(ta.deadline, tb.deadline);
    EXPECT_DOUBLE_EQ(ta.phase, tb.phase);
    EXPECT_EQ(ta.fixed_priority, tb.fixed_priority);
    EXPECT_EQ(ta.cluster, tb.cluster);
    EXPECT_DOUBLE_EQ(ta.final_compute, tb.final_compute);
    ASSERT_EQ(ta.segments.size(), tb.segments.size());
    for (std::size_t k = 0; k < ta.segments.size(); ++k) {
      EXPECT_DOUBLE_EQ(ta.segments[k].compute_before,
                       tb.segments[k].compute_before);
      EXPECT_DOUBLE_EQ(ta.segments[k].cs.length, tb.segments[k].cs.length);
      EXPECT_EQ(ta.segments[k].cs.reads, tb.segments[k].cs.reads);
      EXPECT_EQ(ta.segments[k].cs.writes, tb.segments[k].cs.writes);
    }
  }
}

TEST(Serialize, RoundTripSample) {
  const auto sys = sample_system();
  const auto again = from_text(to_text(sys));
  expect_same(sys, again);
}

TEST(Serialize, RoundTripGenerated) {
  Rng rng(123);
  GeneratorConfig cfg;
  for (int trial = 0; trial < 10; ++trial) {
    const auto sys = generate(rng, cfg);
    const auto again = from_text(to_text(sys));
    expect_same(sys, again);
  }
}

TEST(Serialize, CommentsAndBlankLinesIgnored) {
  const std::string text = R"(# a workload
taskset v1

platform processors=1 cluster=1 resources=1
# the only task
task id=0 period=10 deadline=10 phase=0 prio=0 cluster=0 final=1
cs pre=0.5 len=0.2 reads=0 writes=   # trailing comment
)";
  const auto sys = from_text(text);
  ASSERT_EQ(sys.tasks.size(), 1u);
  EXPECT_EQ(sys.tasks[0].segments.size(), 1u);
  EXPECT_TRUE(sys.tasks[0].segments[0].cs.reads.test(0));
}

TEST(Serialize, Errors) {
  EXPECT_THROW(from_text(""), std::invalid_argument);  // no header
  EXPECT_THROW(from_text("taskset v2\n"), std::invalid_argument);
  EXPECT_THROW(from_text("taskset v1\n"), std::invalid_argument);  // no platform
  EXPECT_THROW(from_text("taskset v1\nbogus x=1\n"), std::invalid_argument);
  EXPECT_THROW(
      from_text("taskset v1\nplatform processors=1 cluster=1 resources=1\n"
                "cs pre=1 len=1 reads= writes=0\n"),
      std::invalid_argument);  // cs before task
  EXPECT_THROW(
      from_text("taskset v1\nplatform processors=1 cluster=1 resources=1\n"
                "task id=0 period=10 deadline=10 phase=0 prio=0 cluster=0 "
                "final=1\n"
                "cs pre=1 len=1 reads=5 writes=\n"),
      std::invalid_argument);  // resource out of range
  EXPECT_THROW(
      from_text("taskset v1\nplatform processors=1 cluster=1 resources=1\n"
                "task id=0 period=10 deadline=10\n"),
      std::invalid_argument);  // missing fields
  EXPECT_THROW(
      from_text("taskset v1\nplatform processors=1 cluster=1 resources=1\n"
                "task id=0 period=abc deadline=10 phase=0 prio=0 cluster=0 "
                "final=1\n"),
      std::invalid_argument);  // bad number
}

TEST(Serialize, ParsedSystemIsValidated) {
  // period <= 0 passes parsing but fails TaskSystem::validate().
  EXPECT_THROW(
      from_text("taskset v1\nplatform processors=1 cluster=1 resources=1\n"
                "task id=0 period=0 deadline=10 phase=0 prio=0 cluster=0 "
                "final=1\n"),
      std::invalid_argument);
}

}  // namespace
}  // namespace rwrnlp::tasksys
