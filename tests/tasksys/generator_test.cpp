#include "tasksys/generator.hpp"

#include <gtest/gtest.h>

namespace rwrnlp::tasksys {
namespace {

TEST(UUniFast, SumsToTotal) {
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    const auto u = uunifast(rng, 8, 3.0);
    ASSERT_EQ(u.size(), 8u);
    double sum = 0;
    for (double x : u) {
      EXPECT_GT(x, 0.0);
      EXPECT_LE(x, 1.0);
      sum += x;
    }
    EXPECT_NEAR(sum, 3.0, 1e-9);
  }
}

TEST(UUniFast, SingleTask) {
  Rng rng(5);
  const auto u = uunifast(rng, 1, 0.7);
  ASSERT_EQ(u.size(), 1u);
  EXPECT_DOUBLE_EQ(u[0], 0.7);
}

TEST(UUniFast, RejectsInfeasible) {
  Rng rng(5);
  EXPECT_THROW(uunifast(rng, 2, 2.5), std::invalid_argument);
  EXPECT_THROW(uunifast(rng, 2, 0.0), std::invalid_argument);
}

TEST(Generator, ProducesValidSystems) {
  Rng rng(42);
  GeneratorConfig cfg;
  for (int trial = 0; trial < 30; ++trial) {
    const auto sys = generate(rng, cfg);
    EXPECT_EQ(sys.tasks.size(), cfg.num_tasks);
    EXPECT_NO_THROW(sys.validate());
    // Utilization within a small tolerance of the target (compute floor of
    // 0.01 can add a little).
    EXPECT_NEAR(sys.total_utilization(), cfg.total_utilization,
                0.25 * cfg.total_utilization + 0.2);
  }
}

TEST(Generator, PeriodsWithinRange) {
  Rng rng(7);
  GeneratorConfig cfg;
  cfg.period_min = 20;
  cfg.period_max = 40;
  const auto sys = generate(rng, cfg);
  for (const auto& t : sys.tasks) {
    EXPECT_GE(t.period, 20.0);
    EXPECT_LE(t.period, 40.0);
    EXPECT_DOUBLE_EQ(t.deadline, t.period);  // implicit deadlines
  }
}

TEST(Generator, ReadRatioExtremes) {
  Rng rng(11);
  GeneratorConfig cfg;
  cfg.read_ratio = 1.0;
  cfg.access_prob = 1.0;
  const auto all_reads = generate(rng, cfg);
  for (const auto& t : all_reads.tasks)
    for (const auto& s : t.segments) EXPECT_FALSE(s.cs.is_write());

  cfg.read_ratio = 0.0;
  const auto all_writes = generate(rng, cfg);
  for (const auto& t : all_writes.tasks)
    for (const auto& s : t.segments) EXPECT_TRUE(s.cs.is_write());
}

TEST(Generator, NestingWidthBounded) {
  Rng rng(13);
  GeneratorConfig cfg;
  cfg.max_nesting = 2;
  cfg.access_prob = 1.0;
  const auto sys = generate(rng, cfg);
  for (const auto& t : sys.tasks)
    for (const auto& s : t.segments)
      EXPECT_LE((s.cs.reads | s.cs.writes).count(), 2u);
}

TEST(Generator, MixedRequestsWhenEnabled) {
  Rng rng(17);
  GeneratorConfig cfg;
  cfg.mixed_prob = 1.0;
  cfg.read_ratio = 0.0;
  cfg.access_prob = 1.0;
  cfg.max_nesting = 3;
  const auto sys = generate(rng, cfg);
  bool saw_mixed = false;
  for (const auto& t : sys.tasks)
    for (const auto& s : t.segments)
      if (!s.cs.reads.empty() && !s.cs.writes.empty()) saw_mixed = true;
  EXPECT_TRUE(saw_mixed);
}

TEST(Generator, CsLengthsWithinRange) {
  Rng rng(19);
  GeneratorConfig cfg;
  cfg.cs_min = 0.2;
  cfg.cs_max = 0.3;
  cfg.access_prob = 1.0;
  const auto sys = generate(rng, cfg);
  for (const auto& t : sys.tasks)
    for (const auto& s : t.segments) {
      EXPECT_GE(s.cs.length, 0.2);
      EXPECT_LE(s.cs.length, 0.3);
    }
}

TEST(Generator, UpgradeableSectionsWhenEnabled) {
  Rng rng(21);
  GeneratorConfig cfg;
  cfg.upgradeable_prob = 1.0;
  cfg.access_prob = 1.0;
  const auto sys = generate(rng, cfg);
  std::size_t upgradeable = 0;
  for (const auto& t : sys.tasks)
    for (const auto& s : t.segments) {
      EXPECT_TRUE(s.cs.upgradeable);
      EXPECT_TRUE(s.cs.writes.empty());
      EXPECT_GT(s.cs.write_segment_len, 0.0);
      ++upgradeable;
    }
  EXPECT_GT(upgradeable, 0u);
  EXPECT_NO_THROW(sys.validate());
}

TEST(Generator, IncrementalSectionsWhenEnabled) {
  Rng rng(23);
  GeneratorConfig cfg;
  cfg.incremental_prob = 1.0;
  cfg.read_ratio = 0.0;
  cfg.access_prob = 1.0;
  cfg.max_nesting = 3;
  const auto sys = generate(rng, cfg);
  bool saw_incremental = false;
  for (const auto& t : sys.tasks)
    for (const auto& s : t.segments)
      if (s.cs.incremental) {
        saw_incremental = true;
        EXPECT_GT((s.cs.reads | s.cs.writes).count(), 1u);
      }
  EXPECT_TRUE(saw_incremental);
  EXPECT_NO_THROW(sys.validate());
}

TEST(Generator, DeterministicForSameSeed) {
  GeneratorConfig cfg;
  Rng a(99), b(99);
  const auto s1 = generate(a, cfg);
  const auto s2 = generate(b, cfg);
  ASSERT_EQ(s1.tasks.size(), s2.tasks.size());
  for (std::size_t i = 0; i < s1.tasks.size(); ++i) {
    EXPECT_DOUBLE_EQ(s1.tasks[i].period, s2.tasks[i].period);
    EXPECT_EQ(s1.tasks[i].segments.size(), s2.tasks[i].segments.size());
  }
}

}  // namespace
}  // namespace rwrnlp::tasksys
