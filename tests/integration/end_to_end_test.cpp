// Cross-module integration tests: generator -> serializer -> parser ->
// protocol adapter -> simulator, verifying that the whole pipeline is
// deterministic and serialization-transparent.
#include <gtest/gtest.h>

#include "analysis/schedulability.hpp"
#include "sched/simulator.hpp"
#include "tasksys/generator.hpp"
#include "tasksys/serialize.hpp"

namespace rwrnlp {
namespace {

using namespace sched;

tasksys::GeneratorConfig pipeline_config() {
  tasksys::GeneratorConfig gc;
  gc.num_tasks = 8;
  gc.total_utilization = 1.6;
  gc.num_processors = 4;
  gc.cluster_size = 4;
  gc.num_resources = 5;
  gc.read_ratio = 0.5;
  gc.upgradeable_prob = 0.2;
  gc.incremental_prob = 0.2;
  return gc;
}

SimResult simulate(const TaskSystem& sys, ProtocolKind kind,
                   std::uint64_t seed) {
  ProtocolAdapter proto(kind, sys, true);
  SimConfig cfg;
  cfg.horizon = 250;
  cfg.wait = WaitMode::Spin;
  cfg.seed = seed;
  Simulator sim(sys, proto, cfg);
  return sim.run();
}

void expect_equal_results(const SimResult& a, const SimResult& b) {
  ASSERT_EQ(a.per_task.size(), b.per_task.size());
  EXPECT_EQ(a.requests_issued, b.requests_issued);
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
  for (std::size_t i = 0; i < a.per_task.size(); ++i) {
    EXPECT_EQ(a.per_task[i].jobs_completed, b.per_task[i].jobs_completed);
    EXPECT_EQ(a.per_task[i].deadline_misses, b.per_task[i].deadline_misses);
    if (!a.per_task[i].response_time.empty()) {
      EXPECT_DOUBLE_EQ(a.per_task[i].response_time.max(),
                       b.per_task[i].response_time.max());
    }
    if (!a.per_task[i].write_acq_delay.empty()) {
      ASSERT_FALSE(b.per_task[i].write_acq_delay.empty());
      EXPECT_DOUBLE_EQ(a.per_task[i].write_acq_delay.max(),
                       b.per_task[i].write_acq_delay.max());
    }
  }
}

TEST(EndToEnd, SerializationIsSimulationTransparent) {
  Rng rng(2024);
  const TaskSystem original = tasksys::generate(rng, pipeline_config());
  const TaskSystem reparsed =
      tasksys::from_text(tasksys::to_text(original));
  for (const auto kind : {ProtocolKind::RwRnlp, ProtocolKind::MutexRnlp,
                          ProtocolKind::GroupRw}) {
    const SimResult a = simulate(original, kind, 7);
    const SimResult b = simulate(reparsed, kind, 7);
    expect_equal_results(a, b);
  }
}

TEST(EndToEnd, SimulationIsDeterministicAcrossRuns) {
  Rng rng(515);
  const TaskSystem sys = tasksys::generate(rng, pipeline_config());
  const SimResult a = simulate(sys, ProtocolKind::RwRnlp, 3);
  const SimResult b = simulate(sys, ProtocolKind::RwRnlp, 3);
  expect_equal_results(a, b);
  // And a different simulator seed changes jitter-free runs only through
  // the upgrade decision draws; results may differ but must stay valid.
  const SimResult c = simulate(sys, ProtocolKind::RwRnlp, 4);
  EXPECT_GT(c.jobs_completed, 0u);
}

TEST(EndToEnd, AnalysisVerdictSurvivesSerialization) {
  Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    const TaskSystem sys = tasksys::generate(rng, pipeline_config());
    const TaskSystem reparsed = tasksys::from_text(tasksys::to_text(sys));
    for (const auto kind : {ProtocolKind::RwRnlp, ProtocolKind::GroupMutex}) {
      EXPECT_EQ(analysis::schedulable(sys, kind, WaitMode::Suspend,
                                      analysis::SchedAlgo::PartitionedEdf),
                analysis::schedulable(reparsed, kind, WaitMode::Suspend,
                                      analysis::SchedAlgo::PartitionedEdf));
    }
  }
}

}  // namespace
}  // namespace rwrnlp
