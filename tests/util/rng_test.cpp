#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace rwrnlp {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowCoversRange) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(9);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    hit_lo |= (v == -3);
    hit_hi |= (v == 3);
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(Rng, Uniform01Range) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, Uniform01MeanIsRoughlyHalf) {
  Rng rng(13);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, LogUniformRange) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.log_uniform(1.0, 100.0);
    EXPECT_GE(v, 1.0);
    EXPECT_LE(v, 100.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, SampleIndicesDistinctAndInRange) {
  Rng rng(23);
  for (int trial = 0; trial < 100; ++trial) {
    auto idx = rng.sample_indices(20, 7);
    ASSERT_EQ(idx.size(), 7u);
    std::set<std::size_t> s(idx.begin(), idx.end());
    EXPECT_EQ(s.size(), 7u);
    for (auto i : idx) EXPECT_LT(i, 20u);
  }
}

TEST(Rng, SampleAllIsPermutation) {
  Rng rng(29);
  auto idx = rng.sample_indices(10, 10);
  std::sort(idx.begin(), idx.end());
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(idx[i], i);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(31);
  std::vector<int> v{1, 2, 3, 4, 5, 6};
  auto w = v;
  rng.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(37);
  Rng b = a.split();
  // The split stream should not replay the parent's output.
  Rng a2(37);
  a2.next();  // advance past the split draw
  EXPECT_NE(b.next(), a2.next());
}

TEST(Rng, RejectsBadArguments) {
  Rng rng(41);
  EXPECT_THROW(rng.next_below(0), std::invalid_argument);
  EXPECT_THROW(rng.uniform_int(3, 2), std::invalid_argument);
  EXPECT_THROW(rng.log_uniform(0.0, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace rwrnlp
