#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace rwrnlp {
namespace {

TEST(Table, AlignedPrint) {
  Table t({"proto", "reads"});
  t.add_row({"rw-rnlp", "12"});
  t.add_row({"pf", "3"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| proto   | reads |"), std::string::npos);
  EXPECT_NE(out.find("| rw-rnlp | 12    |"), std::string::npos);
}

TEST(Table, Csv) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, RowArityChecked) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(Table, RowsCount) {
  Table t({"x"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1"});
  EXPECT_EQ(t.rows(), 1u);
}

}  // namespace
}  // namespace rwrnlp
