#include "util/stats.hpp"

#include <gtest/gtest.h>

namespace rwrnlp {
namespace {

TEST(StatAccumulator, BasicMoments) {
  StatAccumulator a;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(x);
  EXPECT_EQ(a.count(), 8u);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);
  EXPECT_NEAR(a.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(a.sum(), 40.0);
}

TEST(StatAccumulator, EmptyThrows) {
  StatAccumulator a;
  EXPECT_THROW(a.mean(), std::invalid_argument);
  EXPECT_THROW(a.min(), std::invalid_argument);
  EXPECT_THROW(a.max(), std::invalid_argument);
}

TEST(StatAccumulator, SingleSample) {
  StatAccumulator a;
  a.add(3.5);
  EXPECT_DOUBLE_EQ(a.mean(), 3.5);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
}

TEST(StatAccumulator, MergeMatchesSequential) {
  StatAccumulator all, left, right;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.37 - 3;
    all.add(x);
    (i < 20 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(StatAccumulator, MergeWithEmpty) {
  StatAccumulator a, empty;
  a.add(1.0);
  a.add(2.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.5);
}

TEST(SampleSet, Percentiles) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_NEAR(s.percentile(50), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(99), 99.01, 1e-9);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(SampleSet, UnsortedInsertionOrder) {
  SampleSet s;
  for (double x : {9.0, 1.0, 5.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.percentile(50), 5.0);
  s.add(0.0);  // resort after more samples
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
}

TEST(SampleSet, GuardsEmptyAndBadPercentile) {
  SampleSet s;
  EXPECT_THROW(s.percentile(50), std::invalid_argument);
  s.add(1.0);
  EXPECT_THROW(s.percentile(-1), std::invalid_argument);
  EXPECT_THROW(s.percentile(101), std::invalid_argument);
}

}  // namespace
}  // namespace rwrnlp
