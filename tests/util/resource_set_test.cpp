#include "util/resource_set.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace rwrnlp {
namespace {

TEST(ResourceSet, StartsEmpty) {
  ResourceSet s(10);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  for (ResourceId r = 0; r < 10; ++r) EXPECT_FALSE(s.test(r));
}

TEST(ResourceSet, SetResetTest) {
  ResourceSet s(100);
  s.set(0);
  s.set(63);
  s.set(64);
  s.set(99);
  EXPECT_TRUE(s.test(0));
  EXPECT_TRUE(s.test(63));
  EXPECT_TRUE(s.test(64));
  EXPECT_TRUE(s.test(99));
  EXPECT_FALSE(s.test(1));
  EXPECT_EQ(s.count(), 4u);
  s.reset(63);
  EXPECT_FALSE(s.test(63));
  EXPECT_EQ(s.count(), 3u);
}

TEST(ResourceSet, InitializerList) {
  ResourceSet s(8, {1, 3, 5});
  EXPECT_EQ(s.count(), 3u);
  EXPECT_TRUE(s.test(1));
  EXPECT_TRUE(s.test(3));
  EXPECT_TRUE(s.test(5));
}

TEST(ResourceSet, OutOfRangeThrows) {
  // Bounds checks live behind RWRNLP_ASSERT: debug builds throw, NDEBUG
  // builds compile them out of the hot path entirely.
#if RWRNLP_ASSERTS_ENABLED
  ResourceSet s(5);
  EXPECT_THROW(s.set(5), std::invalid_argument);
  EXPECT_THROW(s.test(100), std::invalid_argument);
#else
  GTEST_SKIP() << "index asserts compiled out (NDEBUG)";
#endif
}

TEST(ResourceSet, UnionIntersectionDifference) {
  ResourceSet a(10, {1, 2, 3});
  ResourceSet b(10, {3, 4, 5});
  EXPECT_EQ((a | b), ResourceSet(10, {1, 2, 3, 4, 5}));
  EXPECT_EQ((a & b), ResourceSet(10, {3}));
  EXPECT_EQ((a - b), ResourceSet(10, {1, 2}));
  EXPECT_EQ((b - a), ResourceSet(10, {4, 5}));
}

TEST(ResourceSet, IntersectsAndSubset) {
  ResourceSet a(70, {0, 65});
  ResourceSet b(70, {65});
  ResourceSet c(70, {1, 2});
  EXPECT_TRUE(a.intersects(b));
  EXPECT_FALSE(a.intersects(c));
  EXPECT_TRUE(b.is_subset_of(a));
  EXPECT_FALSE(a.is_subset_of(b));
  EXPECT_TRUE(ResourceSet(70).is_subset_of(b));  // empty set subset of all
}

TEST(ResourceSet, Equality) {
  ResourceSet a(10, {1, 2});
  ResourceSet b(10, {1, 2});
  ResourceSet c(10, {1});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(ResourceSet, ForEachAscending) {
  ResourceSet s(130, {129, 0, 64, 7});
  std::vector<ResourceId> seen;
  s.for_each([&](ResourceId r) { seen.push_back(r); });
  EXPECT_EQ(seen, (std::vector<ResourceId>{0, 7, 64, 129}));
  EXPECT_EQ(s.to_vector(), seen);
}

TEST(ResourceSet, Clear) {
  ResourceSet s(10, {1, 2, 3});
  s.clear();
  EXPECT_TRUE(s.empty());
}

TEST(ResourceSet, Printing) {
  ResourceSet s(10, {0, 2});
  std::ostringstream os;
  os << s;
  EXPECT_EQ(os.str(), "{l0, l2}");
  EXPECT_EQ(ResourceSet(4).to_string(), "{}");
}

TEST(ResourceSet, ResizeGrowsAndPreserves) {
  ResourceSet s(3, {0, 2});
  s.resize(10);
  EXPECT_EQ(s.universe(), 10u);
  EXPECT_TRUE(s.test(0));
  EXPECT_TRUE(s.test(2));
  EXPECT_FALSE(s.test(9));
  s.set(9);
  EXPECT_TRUE(s.test(9));
  // Shrinking is a no-op.
  s.resize(2);
  EXPECT_EQ(s.universe(), 10u);
  EXPECT_TRUE(s.test(9));
}

TEST(ResourceSet, UnionGrowsToLargerUniverse) {
  ResourceSet small(2, {1});
  ResourceSet big(100, {64});
  small |= big;
  EXPECT_EQ(small.universe(), 100u);
  EXPECT_TRUE(small.test(1));
  EXPECT_TRUE(small.test(64));
}

TEST(ResourceSet, LargeUniverse) {
  ResourceSet s(1000);
  for (ResourceId r = 0; r < 1000; r += 37) s.set(r);
  std::size_t expect = 0;
  for (ResourceId r = 0; r < 1000; r += 37) ++expect;
  EXPECT_EQ(s.count(), expect);
  EXPECT_TRUE(s.test(999 - (999 % 37)));
}

TEST(ResourceSet, ForEachReverseDescending) {
  ResourceSet s(130, {129, 0, 64, 7});
  std::vector<ResourceId> seen;
  s.for_each_reverse([&](ResourceId r) { seen.push_back(r); });
  EXPECT_EQ(seen, (std::vector<ResourceId>{129, 64, 7, 0}));

  ResourceSet small(10, {3, 8});
  seen.clear();
  small.for_each_reverse([&](ResourceId r) { seen.push_back(r); });
  EXPECT_EQ(seen, (std::vector<ResourceId>{8, 3}));
}

TEST(ResourceSet, First) {
  EXPECT_EQ(ResourceSet(10, {7, 3, 9}).first(), 3u);
  EXPECT_EQ(ResourceSet(200, {190}).first(), 190u);
  EXPECT_EQ(ResourceSet(10).first(), 10u);  // empty -> universe()
}

TEST(ResourceSet, InlineToHeapResizeCrossesWordBoundary) {
  // Regression for the small-buffer optimization: growing a <=64-resource
  // (inline) set past 64 must migrate the inline word into heap storage.
  ResourceSet s(64, {0, 63});
  s.resize(65);
  EXPECT_TRUE(s.test(0));
  EXPECT_TRUE(s.test(63));
  EXPECT_FALSE(s.test(64));
  s.set(64);
  EXPECT_EQ(s.count(), 3u);
  s.resize(300);
  s.set(299);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_TRUE(s.test(63));
  EXPECT_TRUE(s.test(64));
}

TEST(ResourceSet, MixedInlineAndHeapOperands) {
  ResourceSet small(64, {1, 63});
  ResourceSet big(128, {63, 100});
  EXPECT_TRUE(small.intersects(big));
  EXPECT_FALSE(big.is_subset_of(small));
  ResourceSet u = small | big;
  EXPECT_EQ(u.universe(), 128u);
  EXPECT_EQ(u.count(), 3u);
  ResourceSet d = big - small;
  EXPECT_EQ(d, ResourceSet(128, {100}));
  ResourceSet i = big & small;
  EXPECT_EQ(i, ResourceSet(128, {63}));
}

}  // namespace
}  // namespace rwrnlp
