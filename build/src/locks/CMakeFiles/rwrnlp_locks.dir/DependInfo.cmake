
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/locks/spin_rw_rnlp.cpp" "src/locks/CMakeFiles/rwrnlp_locks.dir/spin_rw_rnlp.cpp.o" "gcc" "src/locks/CMakeFiles/rwrnlp_locks.dir/spin_rw_rnlp.cpp.o.d"
  "/root/repo/src/locks/suspend_rw_rnlp.cpp" "src/locks/CMakeFiles/rwrnlp_locks.dir/suspend_rw_rnlp.cpp.o" "gcc" "src/locks/CMakeFiles/rwrnlp_locks.dir/suspend_rw_rnlp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rsm/CMakeFiles/rwrnlp_rsm.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rwrnlp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
