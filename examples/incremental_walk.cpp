// Incremental locking example (Sec. 3.7): a data-structure walk that locks
// hand-over-hand under the protection of entitlement.
//
// A "directory tree" of resources: a job that may traverse the whole tree
// declares all of it up front (the PCP-like a-priori knowledge), then locks
// only the nodes it actually visits, acquiring each child as the traversal
// decides where to go.  Because the request is *entitled* to its declared
// set from the start, no later-issued conflicting request can slip in
// between the increments — yet siblings the walk never touches remain
// available to everyone else, which plain all-at-once locking would forbid.
//
// Build & run:   ./build/examples/incremental_walk
#include <cstdio>

#include "rsm/engine.hpp"
#include "util/rng.hpp"

using namespace rwrnlp;
using namespace rwrnlp::rsm;

int main() {
  // A binary tree of 7 resources: node 0 the root, children of i at
  // 2i+1 / 2i+2.
  constexpr std::size_t kNodes = 7;
  EngineOptions opt;
  opt.validate = true;
  opt.record_trace = true;
  Engine engine(kNodes, opt);
  Rng rng(2026);

  double t = 0;
  int walks = 0, contended_grants = 0;

  for (int round = 0; round < 6; ++round) {
    // A reader parks on a random leaf, simulating unrelated traffic.
    const ResourceId leaf = static_cast<ResourceId>(3 + rng.next_below(4));
    const RequestId parked =
        engine.issue_read(t += 1, ResourceSet(kNodes, {leaf}));

    // The walker declares the whole tree as potentially written, starts at
    // the root, and descends to one leaf, locking as it goes.
    ResourceSet whole(kNodes);
    for (ResourceId n = 0; n < kNodes; ++n) whole.set(n);
    const RequestId walk = engine.issue_incremental(
        t += 1, ResourceSet(kNodes), whole, ResourceSet(kNodes, {0}));
    std::printf("round %d: walker entitled, holds %s (reader parked on l%u)\n",
                round, engine.holds(walk).to_string().c_str(), leaf);

    ResourceId node = 0;
    while (2 * node + 1 < kNodes) {
      const ResourceId child =
          static_cast<ResourceId>(2 * node + 1 + rng.next_below(2));
      engine.request_more(t += 1, walk, ResourceSet(kNodes, {child}));
      if (!engine.holds(walk).test(child)) {
        // The parked reader holds this leaf; the walker is entitled, so the
        // leaf comes to it the moment the reader finishes — nothing can
        // overtake (Cor. 1).
        ++contended_grants;
        engine.complete(t += 1, parked);
        // The grant happened inside the completion invocation.
      }
      node = child;
    }
    std::printf("         walked to leaf l%u holding %s\n", node,
                engine.holds(walk).to_string().c_str());
    engine.complete(t += 1, walk);
    if (engine.request(parked).state != RequestState::Complete)
      engine.complete(t += 1, parked);
    ++walks;
  }

  std::printf("\n%d walks completed, %d grants had to wait for the parked "
              "reader\n",
              walks, contended_grants);
  std::printf("OK: incremental locking held the traversal invariant\n");
  return 0;
}
