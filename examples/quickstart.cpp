// Quickstart: protect three shared resources with the R/W RNLP from
// multiple threads, mixing single- and multi-resource read and write
// requests.
//
// Build & run:   ./build/examples/quickstart
#include <cstdio>
#include <thread>
#include <vector>

#include "locks/spin_rw_rnlp.hpp"

using rwrnlp::ResourceSet;
using rwrnlp::locks::LockToken;
using rwrnlp::locks::SpinRwRnlp;

int main() {
  // Three resources l0, l1, l2.  Declare that {l0, l1} may be read
  // together (the protocol needs the read-sharing relation a priori; see
  // Sec. 3.2 of the paper / DESIGN.md).
  constexpr std::size_t kResources = 3;
  rwrnlp::rsm::ReadShareTable shares(kResources);
  shares.declare_read_request(ResourceSet(kResources, {0, 1}));

  SpinRwRnlp lock(kResources, shares,
                  rwrnlp::rsm::WriteExpansion::Placeholders);

  // Shared state guarded by the protocol.
  long counters[kResources] = {0, 0, 0};
  long observed_sum01 = 0;

  std::vector<std::thread> threads;
  // Writers: each repeatedly writes one resource.
  for (std::size_t r = 0; r < kResources; ++r) {
    threads.emplace_back([&, r] {
      for (int k = 0; k < 20000; ++k) {
        ResourceSet writes(kResources);
        writes.set(static_cast<rwrnlp::ResourceId>(r));
        const LockToken t = lock.acquire(ResourceSet(kResources), writes);
        ++counters[r];
        lock.release(t);
      }
    });
  }
  // A reader that snapshots l0 and l1 together — a fine-grained
  // multi-resource read request that runs concurrently with writes of l2.
  threads.emplace_back([&] {
    for (int k = 0; k < 20000; ++k) {
      const LockToken t =
          lock.acquire(ResourceSet(kResources, {0, 1}), ResourceSet(kResources));
      observed_sum01 = counters[0] + counters[1];
      lock.release(t);
    }
  });
  for (auto& t : threads) t.join();

  std::printf("final counters: l0=%ld l1=%ld l2=%ld\n", counters[0],
              counters[1], counters[2]);
  std::printf("last snapshot of l0+l1: %ld\n", observed_sum01);
  const bool ok =
      counters[0] == 20000 && counters[1] == 20000 && counters[2] == 20000;
  std::printf("%s\n", ok ? "OK: all writes serialized correctly"
                         : "ERROR: lost updates!");
  return ok ? 0 : 1;
}
