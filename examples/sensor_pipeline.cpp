// Sensor-fusion pipeline: the fine-grained R/W mixing scenario (Sec. 3.5).
//
// A table of sensor readings is updated by per-sensor writer threads.  A
// fusion thread issues *mixed* requests — read access to all sensors, write
// access to the fused estimate — so sensor readers can keep sharing the
// sensor rows while the estimate is being written.  Monitor threads read
// the fused estimate together with one sensor, exercising multi-resource
// read requests.
//
// Build & run:   ./build/examples/sensor_pipeline
#include <cstdio>
#include <thread>
#include <vector>

#include "locks/spin_rw_rnlp.hpp"
#include "util/rng.hpp"

using namespace rwrnlp;
using locks::LockToken;
using locks::SpinRwRnlp;

int main() {
  constexpr std::size_t kSensors = 4;
  constexpr std::size_t kFused = kSensors;  // resource index of the estimate
  constexpr std::size_t kResources = kSensors + 1;
  constexpr int kRounds = 4000;

  // Declare request shapes: monitors read {sensor_i, fused}; the fusion
  // task mixes (reads all sensors, writes fused).
  rsm::ReadShareTable shares(kResources);
  ResourceSet all_sensors(kResources);
  for (std::size_t s = 0; s < kSensors; ++s)
    all_sensors.set(static_cast<ResourceId>(s));
  ResourceSet fused_only(kResources);
  fused_only.set(kFused);
  for (std::size_t s = 0; s < kSensors; ++s) {
    ResourceSet pair(kResources);
    pair.set(static_cast<ResourceId>(s));
    pair.set(kFused);
    shares.declare_read_request(pair);
  }
  shares.declare_mixed_request(all_sensors, fused_only);

  SpinRwRnlp lock(kResources, shares, rsm::WriteExpansion::Placeholders);

  double sensor_value[kSensors] = {0};
  long sensor_seq[kSensors] = {0};
  double fused_value = 0;
  long fusion_runs = 0;
  long monitor_inconsistencies = 0;

  std::vector<std::thread> threads;
  // Per-sensor writers.
  for (std::size_t s = 0; s < kSensors; ++s) {
    threads.emplace_back([&, s] {
      Rng rng(10 + s);
      for (int k = 0; k < kRounds; ++k) {
        ResourceSet w(kResources);
        w.set(static_cast<ResourceId>(s));
        const LockToken t = lock.acquire(ResourceSet(kResources), w);
        sensor_value[s] = rng.uniform(0, 100);
        ++sensor_seq[s];
        lock.release(t);
      }
    });
  }
  // Fusion: mixed request — reads all sensors, writes the estimate.
  threads.emplace_back([&] {
    for (int k = 0; k < kRounds; ++k) {
      const LockToken t = lock.acquire(all_sensors, fused_only);
      double sum = 0;
      for (std::size_t s = 0; s < kSensors; ++s) sum += sensor_value[s];
      fused_value = sum / kSensors;
      ++fusion_runs;
      lock.release(t);
    }
  });
  // Monitors: multi-resource reads of {sensor, fused}.
  for (std::size_t s = 0; s < kSensors; ++s) {
    threads.emplace_back([&, s] {
      for (int k = 0; k < kRounds; ++k) {
        ResourceSet r(kResources);
        r.set(static_cast<ResourceId>(s));
        r.set(kFused);
        const LockToken t = lock.acquire(r, ResourceSet(kResources));
        // Consistency probe: re-reading under the same lock must agree.
        const long seq1 = sensor_seq[s];
        const double v1 = sensor_value[s];
        const long seq2 = sensor_seq[s];
        const double v2 = sensor_value[s];
        if (seq1 != seq2 || v1 != v2) ++monitor_inconsistencies;
        lock.release(t);
      }
    });
  }
  for (auto& t : threads) t.join();

  std::printf("fusion runs: %ld, final estimate: %.2f\n", fusion_runs,
              fused_value);
  for (std::size_t s = 0; s < kSensors; ++s)
    std::printf("sensor %zu: %ld updates, last value %.2f\n", s,
                sensor_seq[s], sensor_value[s]);
  std::printf("monitor inconsistencies: %ld\n", monitor_inconsistencies);
  const bool ok = monitor_inconsistencies == 0 && fusion_runs == kRounds;
  std::printf("%s\n", ok ? "OK: pipeline consistent under mixing"
                         : "ERROR: inconsistency detected!");
  return ok ? 0 : 1;
}
