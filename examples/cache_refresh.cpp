// Upgradeable-transaction example: a shared cache with refresh-on-stale.
//
// Readers check the cache's freshness under read locks (the optimistic
// segment of an upgradeable request, Sec. 3.6); only the thread that finds
// it stale upgrades to a write and refreshes.  The decision segment runs
// concurrently with plain readers, so the common case (cache fresh) never
// blocks anyone.  The Sec. 3.6 caveat is on display: after upgrading, the
// refresher re-checks, because another thread may have refreshed in
// between.
//
// Build & run:   ./build/examples/cache_refresh
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "stm/stm.hpp"
#include "util/rng.hpp"

using namespace rwrnlp;
using namespace rwrnlp::stm;

int main() {
  constexpr int kThreads = 4;
  constexpr int kLookups = 4000;
  constexpr long kTtl = 25;  // lookups until the entry goes stale

  StmRuntime rt;
  Var<long> cache_value(rt, 0);
  Var<long> cache_age(rt, 0);
  VarSet entry;
  entry.add(cache_value).add(cache_age);
  rt.declare_upgradeable(entry);
  rt.declare_transaction(entry, VarSet());   // read-only lookups
  rt.declare_transaction(VarSet(), entry);   // aging writes
  rt.freeze();

  std::atomic<long> refreshes{0};
  std::atomic<long> redundant_upgrades{0};
  std::atomic<long> lookups{0};
  std::atomic<long> source{1000};  // the "expensive backing store"

  std::vector<std::thread> threads;
  for (int ti = 0; ti < kThreads; ++ti) {
    threads.emplace_back([&] {
      for (int k = 0; k < kLookups; ++k) {
        rt.atomically_upgradeable(
            entry,
            [&](const TxContext& ctx) {
              lookups.fetch_add(1, std::memory_order_relaxed);
              return ctx.read(cache_age) >= kTtl;  // stale?
            },
            [&](TxContext& ctx) {
              // Re-check: someone else may have refreshed between our
              // decision segment and this write segment.
              if (ctx.read(cache_age) < kTtl) {
                redundant_upgrades.fetch_add(1, std::memory_order_relaxed);
                ctx.write(cache_age, ctx.read(cache_age) + 1);
                return;
              }
              ctx.write(cache_value,
                        source.fetch_add(1, std::memory_order_relaxed));
              ctx.write(cache_age, 0L);
              refreshes.fetch_add(1, std::memory_order_relaxed);
            });
        // Ordinary read-only lookups age the entry.
        rt.atomically(entry, VarSet(), [&](TxContext& ctx) {
          return ctx.read(cache_value);
        });
        // Aging happens through a tiny write transaction now and then.
        if (k % 2 == 0) {
          VarSet age_only;
          age_only.add(cache_age);
          // Declared implicitly safe: age is within the declared entry set.
          rt.atomically(VarSet(), entry, [&](TxContext& ctx) {
            ctx.write(cache_age, ctx.read(cache_age) + 1);
            return 0L;
          });
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  std::printf("lookups: %ld, refreshes: %ld, redundant upgrades avoided: "
              "%ld\n",
              lookups.load(), refreshes.load(), redundant_upgrades.load());
  const bool ok = refreshes.load() > 0;
  std::printf("%s\n", ok ? "OK: cache refreshed under contention without "
                           "torn reads"
                         : "ERROR: no refresh ever happened?");
  return ok ? 0 : 1;
}
