// STM example: concurrent bank-account transfers with read-only audits.
//
// Demonstrates the lock-based STM of src/stm — the application domain that
// motivated the R/W RNLP (Sec. 1 of the paper): transactions declare their
// read/write sets, never abort, and conflicting transactions serialize
// while disjoint ones run in parallel.
//
// Build & run:   ./build/examples/stm_bank
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "stm/stm.hpp"
#include "util/rng.hpp"

using namespace rwrnlp;
using namespace rwrnlp::stm;

int main() {
  constexpr int kAccounts = 12;
  constexpr long kInitial = 1000;
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 5000;

  StmRuntime::Options opt;
  opt.max_vars = kAccounts;
  StmRuntime bank(opt);

  std::vector<std::unique_ptr<Var<long>>> accounts;
  for (int i = 0; i < kAccounts; ++i)
    accounts.push_back(std::make_unique<Var<long>>(bank, kInitial));

  // Declare the transaction classes up front (required a-priori knowledge).
  VarSet all;
  for (auto& a : accounts) all.add(*a);
  bank.declare_transaction(all, VarSet());  // audit: read-only sweep
  for (int i = 0; i < kAccounts; ++i)
    for (int j = 0; j < kAccounts; ++j)
      if (i != j) {
        VarSet pair;
        pair.add(*accounts[i]).add(*accounts[j]);
        bank.declare_transaction(VarSet(), pair);  // transfer
      }
  bank.freeze();

  std::vector<std::thread> threads;
  std::vector<long> audits(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(2024 + static_cast<std::uint64_t>(t));
      for (int k = 0; k < kOpsPerThread; ++k) {
        if (rng.chance(0.25)) {
          audits[t] = bank.atomically(all, VarSet(), [&](TxContext& ctx) {
            long sum = 0;
            for (auto& a : accounts) sum += ctx.read(*a);
            return sum;
          });
        } else {
          const std::size_t from = rng.next_below(kAccounts);
          std::size_t to = rng.next_below(kAccounts);
          if (to == from) to = (to + 1) % kAccounts;
          const long amount = static_cast<long>(rng.next_below(100));
          VarSet pair;
          pair.add(*accounts[from]).add(*accounts[to]);
          bank.atomically(VarSet(), pair, [&](TxContext& ctx) {
            ctx.write(*accounts[from], ctx.read(*accounts[from]) - amount);
            ctx.write(*accounts[to], ctx.read(*accounts[to]) + amount);
            return 0;
          });
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  const long total = bank.atomically(all, VarSet(), [&](TxContext& ctx) {
    long sum = 0;
    for (auto& a : accounts) sum += ctx.read(*a);
    return sum;
  });
  for (int t = 0; t < kThreads; ++t)
    std::printf("auditor %d last observed total: %ld\n", t, audits[t]);
  std::printf("final total: %ld (expected %ld)\n", total,
              kInitial * static_cast<long>(kAccounts));
  const bool ok = total == kInitial * kAccounts;
  std::printf("%s\n", ok ? "OK: money conserved under concurrency"
                         : "ERROR: conservation violated!");
  return ok ? 0 : 1;
}
