// Lock service demo: an in-process daemon, two clients over real TCP, and
// one simulated crash (DESIGN.md §15).
//
// What it shows, in order:
//   1. boot a LockService on an ephemeral loopback port;
//   2. client A write-acquires resource 0 through the ServiceClient library;
//   3. client B's acquire of the same resource times out at its deadline
//      (the service withdraws it through the cancel path — B holds nothing);
//   4. B parks on the resource again, A "crashes" (reconnects without a
//      Goodbye — the server sees a dead socket, exactly like a killed
//      process), the watchdog force-releases A's token, and B is promoted;
//   5. A's stale handle from the dead session is fenced: the late release
//      is a counted no-op, never a double free into the new regime;
//   6. the service counters tell the whole story.
//
// Build & run:   ./build/examples/service_demo
#include <cstdio>
#include <thread>

#include "service/client.hpp"
#include "service/server.hpp"

using namespace std::chrono_literals;
using rwrnlp::service::CallResult;
using rwrnlp::service::CallStatus;
using rwrnlp::service::ClientOptions;
using rwrnlp::service::LockService;
using rwrnlp::service::ServiceClient;
using rwrnlp::service::ServiceOptions;
using rwrnlp::service::to_string;

int main() {
  // One daemon over four resources.  The short lease and slice keep the
  // demo snappy; production values are the defaults in ServiceOptions.
  ServiceOptions sopt;
  sopt.lease_ms = 300;
  sopt.slice = 10ms;
  LockService svc(/*num_resources=*/4, sopt);
  svc.start();
  std::printf("daemon on 127.0.0.1:%u, q=%zu, lease %u ms\n", svc.port(),
              svc.num_resources(), sopt.lease_ms);

  ClientOptions copt;
  copt.port = svc.port();
  ServiceClient a(copt), b(copt);
  if (!a.connect() || !b.connect()) {
    std::printf("connect failed\n");
    return 1;
  }
  std::printf("A: session %llu, B: session %llu\n",
              static_cast<unsigned long long>(a.session_id()),
              static_cast<unsigned long long>(b.session_id()));

  // A holds resource 0 for writing; masks are bit sets over [0, q).
  const CallResult held = a.acquire(/*reads=*/0, /*writes=*/0b0001);
  std::printf("A acquire w{0}: %s (handle %llu)\n", to_string(held.status),
              static_cast<unsigned long long>(held.handle));

  // B cannot have it; its 150 ms deadline expires and the request is
  // withdrawn — CallStatus::Timeout means B holds nothing.
  const CallResult timed_out = b.acquire(0, 0b0001, 150ms);
  std::printf("B acquire w{0}, 150 ms deadline: %s\n",
              to_string(timed_out.status));

  // B parks again, this time willing to wait out a recovery.
  std::thread waiter([&b] {
    const CallResult r = b.acquire(0, 0b0001, 5000ms);
    std::printf("B acquire w{0} after A's crash: %s\n", to_string(r.status));
    if (r.status == CallStatus::Granted) b.release(r.handle);
  });
  std::this_thread::sleep_for(50ms);

  // A "crashes": reconnect() drops the old socket with no Goodbye, so the
  // server sees EOF from a session that still holds a token — the same
  // signal a kill -9 leaves behind.  The dead session is reaped, A's token
  // is force-released, and B is promoted to the now-free resource.
  const std::uint64_t old_epoch = a.epoch();
  a.connect();
  std::printf("A reconnected: epoch %llu -> %llu, fresh session %llu\n",
              static_cast<unsigned long long>(old_epoch),
              static_cast<unsigned long long>(a.epoch()),
              static_cast<unsigned long long>(a.session_id()));
  waiter.join();

  // The old handle belongs to the dead session's generation.  The service
  // fences the late release instead of letting a zombie double-free a
  // resource someone else now holds.
  const CallResult stale = a.release(held.handle);
  std::printf("A release of the pre-crash handle: %s (fenced zombies are "
              "counted no-ops)\n",
              to_string(stale.status));

  const auto& st = svc.stats();
  std::printf("\nservice counters:\n");
  std::printf("  sessions opened/dropped:  %llu / %llu\n",
              static_cast<unsigned long long>(st.sessions_opened.load()),
              static_cast<unsigned long long>(st.sessions_dropped.load()));
  std::printf("  acquires granted:         %llu\n",
              static_cast<unsigned long long>(st.acquires_granted.load()));
  std::printf("  deadline timeouts:        %llu\n",
              static_cast<unsigned long long>(st.timeouts.load()));
  std::printf("  tokens force-released:    %llu\n",
              static_cast<unsigned long long>(st.tokens_force_released.load()));
  std::printf("  zombie frames fenced:     %llu\n",
              static_cast<unsigned long long>(st.zombies_fenced.load()));

  const bool ok = st.tokens_force_released.load() == 1 &&
                  st.zombies_fenced.load() == 1 && st.timeouts.load() == 1;
  a.disconnect();
  b.disconnect();
  svc.stop();
  std::printf("%s\n", ok ? "demo ok" : "demo FAILED");
  return ok ? 0 : 1;
}
