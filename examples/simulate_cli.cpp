// Command-line simulation driver: load a task system (or generate a demo
// one), run it under a chosen protocol and waiting mode, and print metrics
// plus an ASCII schedule.
//
// Usage:
//   simulate_cli [taskset.txt] [--protocol rw-rnlp|rw-rnlp-ph|mutex-rnlp|
//                               group-rw|group-mutex]
//                [--wait spin|suspend] [--horizon H] [--gantt T0 T1]
//
// With no file argument a demo workload is generated, so the binary also
// runs standalone.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "sched/simulator.hpp"
#include "tasksys/generator.hpp"
#include "tasksys/serialize.hpp"
#include "util/table.hpp"

using namespace rwrnlp;
using namespace rwrnlp::sched;

namespace {

ProtocolKind parse_protocol(const std::string& s) {
  if (s == "rw-rnlp") return ProtocolKind::RwRnlp;
  if (s == "rw-rnlp-ph") return ProtocolKind::RwRnlpPlaceholders;
  if (s == "mutex-rnlp") return ProtocolKind::MutexRnlp;
  if (s == "group-rw") return ProtocolKind::GroupRw;
  if (s == "group-mutex") return ProtocolKind::GroupMutex;
  std::fprintf(stderr, "unknown protocol '%s'\n", s.c_str());
  std::exit(2);
}

TaskSystem demo_system() {
  Rng rng(7);
  tasksys::GeneratorConfig gc;
  gc.num_tasks = 8;
  gc.num_processors = 4;
  gc.cluster_size = 4;
  gc.total_utilization = 1.6;
  gc.num_resources = 4;
  gc.read_ratio = 0.6;
  return tasksys::generate(rng, gc);
}

}  // namespace

int main(int argc, char** argv) {
  std::string file;
  ProtocolKind protocol = ProtocolKind::RwRnlp;
  WaitMode wait = WaitMode::Spin;
  double horizon = 200;
  bool gantt = false;
  double g0 = 0, g1 = 20;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", what);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--protocol") {
      protocol = parse_protocol(next("--protocol"));
    } else if (arg == "--wait") {
      const std::string w = next("--wait");
      wait = (w == "suspend") ? WaitMode::Suspend : WaitMode::Spin;
    } else if (arg == "--horizon") {
      horizon = std::stod(next("--horizon"));
    } else if (arg == "--gantt") {
      gantt = true;
      g0 = std::stod(next("--gantt t0"));
      g1 = std::stod(next("--gantt t1"));
    } else if (arg == "--help" || arg == "-h") {
      std::puts("usage: simulate_cli [taskset.txt] [--protocol P] "
                "[--wait spin|suspend] [--horizon H] [--gantt T0 T1]");
      return 0;
    } else {
      file = arg;
    }
  }

  TaskSystem sys;
  if (file.empty()) {
    std::puts("(no taskset file given; using a generated demo workload)");
    sys = demo_system();
  } else {
    std::ifstream is(file);
    if (!is) {
      std::fprintf(stderr, "cannot open %s\n", file.c_str());
      return 2;
    }
    sys = tasksys::read_text(is);
  }

  ProtocolAdapter proto(protocol, sys, /*validate=*/true);
  SimConfig cfg;
  cfg.horizon = horizon;
  cfg.wait = wait;
  cfg.record_schedule = gantt;
  Simulator sim(sys, proto, cfg);
  const SimResult res = sim.run();

  std::printf("protocol=%s wait=%s horizon=%.1f  (m=%zu, c=%zu, q=%zu, "
              "n=%zu, U=%.2f)\n",
              to_string(protocol), wait == WaitMode::Spin ? "spin" : "suspend",
              horizon, sys.num_processors, sys.cluster_size,
              sys.num_resources, sys.tasks.size(), sys.total_utilization());

  Table table({"task", "jobs", "misses", "resp max", "pi-blk max",
               "read acq max", "write acq max"});
  for (std::size_t i = 0; i < sys.tasks.size(); ++i) {
    const auto& m = res.per_task[i];
    auto max_or_dash = [](const SampleSet& s) {
      return s.empty() ? std::string("-") : Table::num(s.max(), 3);
    };
    const double pib = wait == WaitMode::Spin
                           ? (m.pi_blocking.empty() ? 0 : m.pi_blocking.max())
                           : (m.s_oblivious_pi_blocking.empty()
                                  ? 0
                                  : m.s_oblivious_pi_blocking.max());
    table.add_row({"T" + std::to_string(sys.tasks[i].id),
                   std::to_string(m.jobs_completed),
                   std::to_string(m.deadline_misses),
                   max_or_dash(m.response_time), Table::num(pib, 3),
                   max_or_dash(m.read_acq_delay),
                   max_or_dash(m.write_acq_delay)});
  }
  std::ostringstream os;
  table.print(os);
  std::fputs(os.str().c_str(), stdout);

  if (gantt) {
    std::puts("");
    std::fputs(res.schedule.render(sys, g0, g1).c_str(), stdout);
  }
  return 0;
}
