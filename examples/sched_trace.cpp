// Replays the paper's running example (Fig. 2) through the RSM engine and
// prints the protocol trace plus the queue-state table of Fig. 2(b).
//
// Build & run:   ./build/examples/sched_trace
#include <cstdio>
#include <iostream>
#include <sstream>

#include "rsm/engine.hpp"
#include "util/table.hpp"

using namespace rwrnlp;
using namespace rwrnlp::rsm;

namespace {

std::string queue_cell(const std::vector<RequestId>& q) {
  if (q.empty()) return "{}";
  std::ostringstream os;
  os << '{';
  for (std::size_t i = 0; i < q.size(); ++i)
    os << (i ? ", " : "") << 'R' << q[i];
  os << '}';
  return os.str();
}

std::string wq_cell(const std::vector<WqEntry>& q) {
  if (q.empty()) return "{}";
  std::ostringstream os;
  os << '{';
  for (std::size_t i = 0; i < q.size(); ++i) {
    os << (i ? ", " : "") << 'R' << q[i].req;
    if (q[i].placeholder) os << "(ph)";
  }
  os << '}';
  return os.str();
}

}  // namespace

int main() {
  constexpr ResourceId kLa = 0, kLb = 1, kLc = 2;
  ReadShareTable shares(3);
  shares.declare_read_request(ResourceSet(3, {kLa, kLb}));
  shares.declare_read_request(ResourceSet(3, {kLc}));

  EngineOptions opt;
  opt.record_trace = true;
  opt.validate = true;
  Engine engine(3, shares, opt);

  Table table({"time", "RQ(la)", "WQ(la)", "RQ(lb)", "WQ(lb)"});
  auto snapshot = [&](double t) {
    table.add_row({Table::num(t, 0), queue_cell(engine.read_queue(kLa)),
                   wq_cell(engine.write_queue(kLa)),
                   queue_cell(engine.read_queue(kLb)),
                   wq_cell(engine.write_queue(kLb))});
  };

  std::puts("Replaying the running example of Ward & Anderson, Fig. 2:");
  snapshot(0);
  const RequestId w11 = engine.issue_write(1, ResourceSet(3, {kLa, kLb}));
  snapshot(1);
  const RequestId w21 = engine.issue_write(2, ResourceSet(3, {kLa, kLc}));
  snapshot(2);
  const RequestId r31 = engine.issue_read(3, ResourceSet(3, {kLc}));
  snapshot(3);
  const RequestId r41 = engine.issue_read(4, ResourceSet(3, {kLc}));
  snapshot(4);
  engine.complete(5, w11);
  snapshot(5);
  engine.complete(6, r41);
  snapshot(6);
  const RequestId r51 = engine.issue_read(7, ResourceSet(3, {kLa, kLb}));
  snapshot(7);
  engine.complete(8, r31);
  snapshot(8);
  engine.complete(10, w21);
  snapshot(10);
  engine.complete(12, r51);
  snapshot(12);

  std::puts("\nQueue states over time (cf. Fig. 2(b)):");
  std::ostringstream os;
  table.print(os);
  std::fputs(os.str().c_str(), stdout);

  std::puts("\nProtocol trace:");
  std::fputs(format_trace(engine.trace()).c_str(), stdout);

  std::printf("\nAcquisition delays: R%u=%.0f R%u=%.0f R%u=%.0f R%u=%.0f "
              "R%u=%.0f\n",
              w11, engine.request(w11).acquisition_delay(), w21,
              engine.request(w21).acquisition_delay(), r31,
              engine.request(r31).acquisition_delay(), r41,
              engine.request(r41).acquisition_delay(), r51,
              engine.request(r51).acquisition_delay());
  return 0;
}
